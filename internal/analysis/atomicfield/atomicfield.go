// Package atomicfield enforces memory-model discipline on shared struct
// fields: a field that is accessed through sync/atomic anywhere in a
// package must be accessed through sync/atomic everywhere in that
// package. A single plain read or write of such a field is a data race
// — the compiler and CPU are free to tear, cache, or reorder it against
// the atomic accesses — and it is exactly the bug class that produced
// the Span.budget race this analyzer was built from: the tracer
// initialised *s.budget with a plain store while sampled spans
// decremented it with atomic.AddInt32.
//
// Two field shapes are covered:
//
//   - value fields whose address is taken for atomic calls
//     (atomic.LoadUint32(&s.flag)): every other selector of that field
//     — read, write, or address-taken — must also feed a sync/atomic
//     call;
//   - pointer fields passed to atomic calls (atomic.AddInt32(s.budget,
//     -1)): passing the pointer around is fine, dereferencing it
//     (*s.budget) is not.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fulltext/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "a struct field accessed via sync/atomic must be accessed via sync/atomic everywhere in the package",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Pass 1: find the fields involved in sync/atomic calls, and remember
	// the selector expressions that appear inside those calls — they are
	// the sanctioned accesses.
	atomicAddr := make(map[*types.Var]token.Position) // &s.f passed to atomic
	atomicPtr := make(map[*types.Var]token.Position)  // pointer field s.f passed to atomic
	sanctioned := make(map[ast.Expr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := analysis.CalleeFunc(pass.TypesInfo, call)
			if f == nil || analysis.FuncPkgPath(f) != "sync/atomic" || !isAtomicOp(f.Name()) {
				return true
			}
			for _, arg := range call.Args {
				switch a := ast.Unparen(arg).(type) {
				case *ast.UnaryExpr:
					if a.Op != token.AND {
						continue
					}
					if sel, ok := ast.Unparen(a.X).(*ast.SelectorExpr); ok {
						if v := analysis.FieldVar(pass.TypesInfo, sel); v != nil {
							if _, seen := atomicAddr[v]; !seen {
								atomicAddr[v] = pass.Fset.Position(call.Pos())
							}
							sanctioned[sel] = true
						}
					}
				case *ast.SelectorExpr:
					if v := analysis.FieldVar(pass.TypesInfo, a); v != nil {
						if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
							if _, seen := atomicPtr[v]; !seen {
								atomicPtr[v] = pass.Fset.Position(call.Pos())
							}
						}
						sanctioned[a] = true
					}
				}
			}
			return true
		})
	}
	if len(atomicAddr) == 0 && len(atomicPtr) == 0 {
		return nil
	}
	// Pass 2: every other access to those fields must be sanctioned.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.SelectorExpr:
				if sanctioned[v] {
					return true
				}
				f := analysis.FieldVar(pass.TypesInfo, v)
				if f == nil {
					return true
				}
				if at, ok := atomicAddr[f]; ok {
					pass.Reportf(v.Pos(), "plain access of field %s, which is accessed atomically at %s; use sync/atomic everywhere", f.Name(), at)
				}
			case *ast.StarExpr:
				sel, ok := ast.Unparen(v.X).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				f := analysis.FieldVar(pass.TypesInfo, sel)
				if f == nil {
					return true
				}
				if at, ok := atomicPtr[f]; ok {
					pass.Reportf(v.Pos(), "plain dereference of pointer field %s, which is updated atomically at %s; use sync/atomic everywhere", f.Name(), at)
				}
			}
			return true
		})
	}
	return nil
}

// isAtomicOp matches the sync/atomic functions that constitute an
// atomic access (not constants like atomic.Int32 methods, which cannot
// coexist with plain access anyway).
func isAtomicOp(name string) bool {
	for _, p := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}
