package atomicfield_test

import (
	"testing"

	"fulltext/internal/analysis/analysistest"
	"fulltext/internal/analysis/atomicfield"
)

// TestAtomicfield checks the analyzer against its fixture package;
// every // want must fire and every accepted pattern (atomic access,
// pointer hand-off, untouched fields, reasoned suppression) must stay
// silent.
func TestAtomicfield(t *testing.T) {
	analysistest.Run(t, "testdata", atomicfield.Analyzer, "atomicfield/a")
}
