// Fixtures for the atomicfield analyzer, modeled on the Span.budget
// race: a field touched through sync/atomic anywhere must be touched
// through sync/atomic everywhere in the package.
package a

import "sync/atomic"

type tracer struct {
	spans    int32
	budget   *int32
	maxSpans int
}

func (t *tracer) start() {
	_ = atomic.AddInt32(&t.spans, 1)  // ok: sanctioned atomic access
	*t.budget = int32(t.maxSpans) - 1 // want `plain dereference of pointer field budget`
}

func (t *tracer) sample() bool {
	return atomic.AddInt32(t.budget, -1) >= 0 // ok: pointer fed to sync/atomic
}

func (t *tracer) snapshot() int32 {
	return t.spans // want `plain access of field spans`
}

func (t *tracer) share() *int32 {
	return t.budget // ok: passing the pointer around is fine, only dereference races
}

func (t *tracer) reset() {
	atomic.StoreInt32(&t.spans, 0)           // ok
	atomic.StoreInt32(t.budget, 0)           // ok
	_ = atomic.LoadInt32(&t.spans)           // ok
	_ = atomic.CompareAndSwapInt32(t.budget, // ok
		0, 1)
}

// maxSpans is never accessed atomically, so plain access is fine.
func (t *tracer) limit() int { return t.maxSpans } // ok

// A type with no atomic involvement at all stays silent.
type plain struct{ n int }

func (p *plain) inc() { p.n++ } // ok

// A reasoned suppression is honored — no want here.
func newTracer() *tracer {
	t := &tracer{budget: new(int32)}
	//ftlint:ignore atomicfield constructor runs before the tracer is shared
	t.spans = 0
	return t
}
