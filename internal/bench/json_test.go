package bench

import (
	"encoding/json"
	"testing"
	"time"
)

func TestTableJSON(t *testing.T) {
	tb := newTable("demo", "x", []string{"A", "B"})
	tb.set("1", "A", Cell{Time: 1500 * time.Microsecond, Results: 3})
	tb.set("1", "B", Cell{Err: "nope"})
	tb.set("2", "A", Cell{Time: 2 * time.Millisecond, Results: 4})
	// series B never measured at x=2: omitted from that row.

	j := tb.JSON()
	if j.Title != "demo" || j.XLabel != "x" || len(j.Series) != 2 {
		t.Fatalf("header wrong: %+v", j)
	}
	if len(j.Rows) != 2 || j.Rows[0].X != "1" || j.Rows[1].X != "2" {
		t.Fatalf("rows wrong: %+v", j.Rows)
	}
	if c := j.Rows[0].Cells["A"]; c.Millis != 1.5 || c.Results != 3 || c.Err != "" {
		t.Fatalf("cell A wrong: %+v", c)
	}
	if c := j.Rows[0].Cells["B"]; c.Err != "nope" {
		t.Fatalf("cell B wrong: %+v", c)
	}
	if _, ok := j.Rows[1].Cells["B"]; ok {
		t.Fatal("unmeasured cell should be omitted")
	}

	raw, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	var back TableJSON
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Rows[0].Cells["A"].Millis != 1.5 {
		t.Fatalf("round trip lost data: %s", raw)
	}
}
