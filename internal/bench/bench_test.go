package bench

import (
	"strings"
	"testing"

	"fulltext/internal/pred"
)

func tinySetup() Setup {
	s := Defaults(0.02) // tiny corpus for unit testing the harness itself
	s.Repeats = 1
	return s
}

func TestBuild(t *testing.T) {
	s := tinySetup()
	c, ix, plants := Build(s)
	if c.Len() != s.CNodes || ix.NumNodes() != s.CNodes {
		t.Fatalf("corpus size %d, want %d", c.Len(), s.CNodes)
	}
	if len(plants) != s.NumPlants {
		t.Fatalf("plants = %v", plants)
	}
	for _, p := range plants {
		if ix.DF(p) == 0 {
			t.Errorf("plant %s missing from index", p)
		}
	}
}

func TestRunSeriesAllEnginesAgree(t *testing.T) {
	s := tinySetup()
	_, ix, plants := Build(s)
	reg := pred.Default()

	// The three positive-predicate engines must return identical result
	// counts on the same workload query; ditto for the negative pair.
	pp := RunSeries("PPRED-POS", ix, reg, plants, s)
	np := RunSeries("NPRED-POS", ix, reg, plants, s)
	cp := RunSeries("COMP-POS", ix, reg, plants, s)
	for _, c := range []Cell{pp, np, cp} {
		if c.Err != "" {
			t.Fatalf("series error: %s", c.Err)
		}
	}
	if pp.Results != np.Results || pp.Results != cp.Results {
		t.Fatalf("positive engines disagree: ppred=%d npred=%d comp=%d", pp.Results, np.Results, cp.Results)
	}
	nn := RunSeries("NPRED-NEG", ix, reg, plants, s)
	cn := RunSeries("COMP-NEG", ix, reg, plants, s)
	if nn.Err != "" || cn.Err != "" {
		t.Fatalf("negative series error: %q %q", nn.Err, cn.Err)
	}
	if nn.Results != cn.Results {
		t.Fatalf("negative engines disagree: npred=%d comp=%d", nn.Results, cn.Results)
	}
	bl := RunSeries("BOOL", ix, reg, plants, s)
	if bl.Err != "" {
		t.Fatalf("BOOL error: %s", bl.Err)
	}
	if bl.Results < pp.Results {
		t.Fatalf("BOOL (no predicates) must match at least as many nodes: bool=%d ppred=%d", bl.Results, pp.Results)
	}
	if bad := RunSeries("NOPE", ix, reg, plants, s); bad.Err == "" {
		t.Fatalf("unknown series accepted")
	}
}

func TestTablesRender(t *testing.T) {
	s := tinySetup()
	tab := VaryTokens(s, []int{1, 2})
	out := tab.Format()
	for _, want := range []string{"Figure 5", "toks_Q", "BOOL", "COMP-NEG", "ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	tab6 := VaryPreds(s, []int{0, 1})
	if len(tab6.XVals) != 2 {
		t.Errorf("fig6 rows = %v", tab6.XVals)
	}
	tab7 := VaryCNodes(s, []int{s.CNodes, 2 * s.CNodes})
	ratios := GrowthRatios(tab7)
	if len(ratios) == 0 {
		t.Errorf("no growth ratios computed")
	}
	tab8 := VaryPosPerEntry(s, []int{2, 4})
	if len(tab8.XVals) != 2 {
		t.Errorf("fig8 rows = %v", tab8.XVals)
	}
}

func TestHierarchySmoke(t *testing.T) {
	s := tinySetup()
	s.CNodes = 60
	tab := Hierarchy(s)
	if len(tab.XVals) != 3 {
		t.Fatalf("hierarchy rows = %v", tab.XVals)
	}
	for _, x := range tab.XVals {
		for _, series := range Series {
			if c, ok := tab.Cells[x][series]; !ok || c.Err != "" {
				t.Errorf("hierarchy cell %s/%s: %+v", x, series, c)
			}
		}
	}
}
