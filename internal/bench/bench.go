// Package bench is the experiment harness that regenerates the paper's
// evaluation (Section 6, Figures 3 and 5–8) on the synthetic corpus of
// package synth. Each experiment sweeps one parameter and times every
// engine series exactly as the paper plots them:
//
//	BOOL       — merge engine on the predicate-free query
//	PPRED-POS  — pipelined engine, positive predicates
//	NPRED-POS  — permutation driver on the positive query
//	NPRED-NEG  — permutation driver on the negative query
//	COMP-POS   — materializing engine, positive query
//	COMP-NEG   — materializing engine, negative query
package bench

import (
	"fmt"
	"strings"
	"time"

	"fulltext/internal/booleval"
	"fulltext/internal/compeval"
	"fulltext/internal/core"
	"fulltext/internal/invlist"
	"fulltext/internal/npred"
	"fulltext/internal/ppred"
	"fulltext/internal/pred"
	"fulltext/internal/synth"
)

// Series names, in plot order.
var Series = []string{"BOOL", "PPRED-POS", "NPRED-POS", "NPRED-NEG", "COMP-POS", "COMP-NEG"}

// Setup fixes the corpus parameters an experiment does not sweep. The
// defaults mirror Section 6: 6000 context nodes, 3 query tokens, 2
// predicates, 25 positions per inverted-list entry.
type Setup struct {
	Seed        int64
	CNodes      int
	DocLen      int
	Vocab       int
	NumPlants   int
	PlantFrac   float64
	PosPerEntry int
	ToksQ       int
	PredsQ      int
	DistLimit   int
	Repeats     int // timing repetitions per cell (median-free mean)
}

// Defaults returns the paper's default parameters, scaled by f in (0, 1]
// for quick runs (f = 1 reproduces the Section 6 sizes).
func Defaults(f float64) Setup {
	if f <= 0 || f > 1 {
		f = 1
	}
	s := Setup{
		Seed:        2006,
		CNodes:      int(6000 * f),
		DocLen:      int(400 * f),
		Vocab:       int(20000 * f),
		NumPlants:   5,
		PlantFrac:   0.3,
		PosPerEntry: 25,
		ToksQ:       3,
		PredsQ:      2,
		DistLimit:   20,
		Repeats:     3,
	}
	if s.CNodes < 50 {
		s.CNodes = 50
	}
	if s.DocLen < 60 {
		s.DocLen = 60
	}
	if s.Vocab < 500 {
		s.Vocab = 500
	}
	return s
}

// Build generates the corpus and index for a setup, returning the plant
// token names.
func Build(s Setup) (*core.Corpus, *invlist.Index, []string) {
	plants := synth.PlantTokens(s.NumPlants)
	names := make([]string, len(plants))
	for i := range plants {
		plants[i].DocFraction = s.PlantFrac
		plants[i].PerDoc = s.PosPerEntry
		names[i] = plants[i].Token
	}
	c := synth.Corpus(synth.Config{
		Seed:    s.Seed,
		NumDocs: s.CNodes,
		DocLen:  s.DocLen,

		VocabSize: s.Vocab,
		Plants:    plants,
	})
	return c, invlist.Build(c), names
}

// Cell is one measurement.
type Cell struct {
	Time    time.Duration
	Results int
	Err     string
}

// Table is a formatted experiment result: one row per swept value, one cell
// per series.
type Table struct {
	Title  string
	XLabel string
	Series []string
	XVals  []string
	Cells  map[string]map[string]Cell // xval -> series -> cell
}

func newTable(title, xlabel string, series []string) *Table {
	return &Table{Title: title, XLabel: xlabel, Series: series, Cells: map[string]map[string]Cell{}}
}

func (t *Table) set(x, series string, c Cell) {
	if _, ok := t.Cells[x]; !ok {
		t.XVals = append(t.XVals, x)
		t.Cells[x] = map[string]Cell{}
	}
	t.Cells[x][series] = c
}

// Format renders the table as aligned text, one series per column.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-14s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, "%16s", s)
	}
	b.WriteString("\n")
	for _, x := range t.XVals {
		fmt.Fprintf(&b, "%-14s", x)
		for _, s := range t.Series {
			c, ok := t.Cells[x][s]
			switch {
			case !ok:
				fmt.Fprintf(&b, "%16s", "-")
			case c.Err != "":
				fmt.Fprintf(&b, "%16s", "ERR")
			default:
				fmt.Fprintf(&b, "%13.3fms", float64(c.Time.Microseconds())/1000)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RunSeries times one engine series on a prepared index.
func RunSeries(series string, ix *invlist.Index, reg *pred.Registry, plants []string, s Setup) Cell {
	w := synth.Workload{Tokens: s.ToksQ, Preds: s.PredsQ, DistLimit: s.DistLimit}
	var run func() (int, error)
	switch series {
	case "BOOL":
		q := w.BoolQuery(plants)
		run = func() (int, error) {
			nodes, err := booleval.Eval(q, ix, nil)
			return len(nodes), err
		}
	case "PPRED-POS":
		q := w.PipelinedQuery(plants)
		plan, err := ppred.Compile(q, reg)
		if err != nil {
			return Cell{Err: err.Error()}
		}
		run = func() (int, error) {
			nodes, err := plan.Run(ix, reg, nil)
			return len(nodes), err
		}
	case "NPRED-POS":
		q := w.PipelinedQuery(plants)
		plan, err := ppred.CompileNeg(q, reg)
		if err != nil {
			return Cell{Err: err.Error()}
		}
		run = func() (int, error) {
			nodes, err := plan.RunAll(ix, reg, nil, ppred.OrderOptions{})
			return len(nodes), err
		}
	case "NPRED-NEG":
		wn := w
		wn.Negative = true
		q := wn.PipelinedQuery(plants)
		plan, err := npred.Compile(q, reg)
		if err != nil {
			return Cell{Err: err.Error()}
		}
		run = func() (int, error) {
			nodes, err := plan.RunAll(ix, reg, nil, ppred.OrderOptions{})
			return len(nodes), err
		}
	case "COMP-POS":
		q := w.PipelinedQuery(plants)
		run = func() (int, error) {
			nodes, err := compeval.Eval(q, ix, reg, compeval.Options{})
			return len(nodes), err
		}
	case "COMP-NEG":
		wn := w
		wn.Negative = true
		q := wn.PipelinedQuery(plants)
		run = func() (int, error) {
			nodes, err := compeval.Eval(q, ix, reg, compeval.Options{})
			return len(nodes), err
		}
	default:
		return Cell{Err: "unknown series " + series}
	}

	reps := s.Repeats
	if reps <= 0 {
		reps = 1
	}
	var total time.Duration
	results := 0
	for r := 0; r < reps; r++ {
		start := time.Now()
		n, err := run()
		if err != nil {
			return Cell{Err: err.Error()}
		}
		total += time.Since(start)
		results = n
	}
	return Cell{Time: total / time.Duration(reps), Results: results}
}

// VaryTokens reproduces Figure 5: query evaluation time vs toks_Q (1–5).
func VaryTokens(s Setup, tokens []int) *Table {
	t := newTable("Figure 5: varying number of query tokens", "toks_Q", Series)
	reg := pred.Default()
	_, ix, plants := Build(s)
	for _, k := range tokens {
		cfg := s
		cfg.ToksQ = k
		if cfg.PredsQ > k {
			cfg.PredsQ = k
		}
		for _, series := range Series {
			t.set(fmt.Sprint(k), series, RunSeries(series, ix, reg, plants, cfg))
		}
	}
	return t
}

// VaryPreds reproduces Figure 6: query evaluation time vs preds_Q (0–4).
func VaryPreds(s Setup, preds []int) *Table {
	t := newTable("Figure 6: varying number of query predicates", "preds_Q", Series)
	reg := pred.Default()
	_, ix, plants := Build(s)
	for _, p := range preds {
		cfg := s
		cfg.PredsQ = p
		for _, series := range Series {
			if p == 0 && series != "BOOL" && series != "PPRED-POS" && series != "COMP-POS" {
				// With no predicates the -NEG series coincide with -POS;
				// the paper reports only BOOL-like behaviour there.
				continue
			}
			t.set(fmt.Sprint(p), series, RunSeries(series, ix, reg, plants, cfg))
		}
	}
	return t
}

// VaryCNodes reproduces Figure 7: query evaluation time vs corpus size.
func VaryCNodes(s Setup, sizes []int) *Table {
	t := newTable("Figure 7: varying number of context nodes", "cnodes", Series)
	reg := pred.Default()
	for _, n := range sizes {
		cfg := s
		cfg.CNodes = n
		_, ix, plants := Build(cfg)
		for _, series := range Series {
			t.set(fmt.Sprint(n), series, RunSeries(series, ix, reg, plants, cfg))
		}
	}
	return t
}

// VaryPosPerEntry reproduces Figure 8: query evaluation time vs positions
// per inverted-list entry.
func VaryPosPerEntry(s Setup, ppe []int) *Table {
	t := newTable("Figure 8: varying positions per inverted-list entry", "pos_per_entry", Series)
	reg := pred.Default()
	for _, p := range ppe {
		cfg := s
		cfg.PosPerEntry = p
		if cfg.DocLen < 3*p {
			cfg.DocLen = 3 * p
		}
		_, ix, plants := Build(cfg)
		for _, series := range Series {
			t.set(fmt.Sprint(p), series, RunSeries(series, ix, reg, plants, cfg))
		}
	}
	return t
}

// Hierarchy reproduces Figure 3 empirically: it scales data size by
// {1, 2, 4} and reports per-engine growth ratios, demonstrating the
// linear-vs-polynomial separation of the complexity hierarchy.
func Hierarchy(s Setup) *Table {
	t := newTable("Figure 3: complexity hierarchy (growth when data doubles twice)", "scale", Series)
	reg := pred.Default()
	for _, f := range []int{1, 2, 4} {
		cfg := s
		cfg.CNodes = s.CNodes * f
		_, ix, plants := Build(cfg)
		for _, series := range Series {
			t.set(fmt.Sprintf("x%d", f), series, RunSeries(series, ix, reg, plants, cfg))
		}
	}
	return t
}

// GrowthRatios summarizes a table produced by Hierarchy or VaryCNodes:
// last-row time divided by first-row time per series.
func GrowthRatios(t *Table) map[string]float64 {
	out := make(map[string]float64, len(t.Series))
	if len(t.XVals) < 2 {
		return out
	}
	first, last := t.XVals[0], t.XVals[len(t.XVals)-1]
	for _, s := range t.Series {
		a, okA := t.Cells[first][s]
		b, okB := t.Cells[last][s]
		if okA && okB && a.Err == "" && b.Err == "" && a.Time > 0 {
			out[s] = float64(b.Time) / float64(a.Time)
		}
	}
	return out
}
