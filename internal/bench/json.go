package bench

// Machine-readable export of experiment tables, consumed by ftbench -json
// to emit BENCH_*.json files so successive PRs can track a performance
// trajectory without scraping aligned text.

// TableJSON mirrors Table with stable JSON field names.
type TableJSON struct {
	Title  string    `json:"title"`
	XLabel string    `json:"x_label"`
	Series []string  `json:"series"`
	Rows   []RowJSON `json:"rows"`
}

// RowJSON is one swept value with one cell per measured series.
type RowJSON struct {
	X     string              `json:"x"`
	Cells map[string]CellJSON `json:"cells"`
}

// CellJSON is one measurement.
type CellJSON struct {
	Millis  float64 `json:"ms"`
	Results int     `json:"results"`
	Err     string  `json:"error,omitempty"`
}

// JSON converts the table to its machine-readable form, preserving sweep
// order and omitting cells that were never measured.
func (t *Table) JSON() TableJSON {
	out := TableJSON{
		Title:  t.Title,
		XLabel: t.XLabel,
		Series: append([]string(nil), t.Series...),
		Rows:   make([]RowJSON, 0, len(t.XVals)),
	}
	for _, x := range t.XVals {
		row := RowJSON{X: x, Cells: make(map[string]CellJSON, len(t.Series))}
		for _, s := range t.Series {
			c, ok := t.Cells[x][s]
			if !ok {
				continue
			}
			row.Cells[s] = CellJSON{
				Millis:  float64(c.Time.Microseconds()) / 1000,
				Results: c.Results,
				Err:     c.Err,
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}
