package compeval

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"fulltext/internal/core"
	"fulltext/internal/ftc"
	"fulltext/internal/invlist"
	"fulltext/internal/lang"
	"fulltext/internal/pred"
)

func corpusIx(t testing.TB, docs ...string) (*core.Corpus, *invlist.Index) {
	t.Helper()
	c := core.NewCorpus()
	for i, text := range docs {
		if _, err := c.Add(fmt.Sprintf("d%d", i+1), text); err != nil {
			t.Fatal(err)
		}
	}
	return c, invlist.Build(c)
}

func same(a, b []core.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFigure4Plan: the Section 5.4 COMP query compiles to the Figure 4
// operator tree — scans of the two tokens, a join, the three predicate
// selections, and a projection to CNode.
func TestFigure4Plan(t *testing.T) {
	reg := pred.Default()
	q, err := lang.Parse(lang.DialectCOMP, `SOME p1 SOME p2 (
		p1 HAS 'usability' AND p2 HAS 'software'
		AND samepara(p1,p2) AND NOT samesent(p1,p2) AND distance(p1,p2,5))`)
	if err != nil {
		t.Fatal(err)
	}
	q = lang.DesugarNegPreds(q, reg)
	plan, err := Explain(q, reg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`scan ("usability")`, `scan ("software")`, "join",
		"samepara", "not_samesent", "distance", "project (CNode)",
	} {
		if !strings.Contains(plan, want) {
			t.Errorf("Figure 4 plan missing %q:\n%s", want, plan)
		}
	}
	for _, bad := range []string{"scan (ANY)", "intersect"} {
		if strings.Contains(plan, bad) {
			t.Errorf("Figure 4 plan contains %q:\n%s", bad, plan)
		}
	}
}

// TestCompMatchesOracle: the complete engine agrees with the calculus
// interpreter on arbitrary COMP queries, including the ones no other engine
// accepts.
func TestCompMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	vocab := []string{"aa", "bb", "cc"}
	reg := pred.Default()
	gen := &ftc.Gen{Rng: rng, Vocab: vocab, Reg: reg,
		Preds: []string{"distance", "ordered", "samepara", "diffpos", "not_distance"}, MaxDepth: 4}
	for trial := 0; trial < 100; trial++ {
		e := gen.Closed()
		q := lang.FromFTC(e) // arbitrary COMP query
		c := core.NewCorpus()
		for i := 0; i < 5; i++ {
			n := rng.Intn(6)
			words := make([]string, n)
			for j := range words {
				words[j] = vocab[rng.Intn(len(vocab))]
			}
			c.MustAdd(fmt.Sprintf("doc%d", i), strings.Join(words, " "))
		}
		ix := invlist.Build(c)
		got, err := Eval(q, ix, reg, Options{})
		if err != nil {
			t.Fatalf("Eval(%s): %v", q, err)
		}
		want, err := ftc.Query(c, reg, e)
		if err != nil {
			t.Fatal(err)
		}
		if !same(got, want) {
			t.Fatalf("query %s: comp=%v oracle=%v", q, got, want)
		}
	}
}

func TestEveryQueries(t *testing.T) {
	c, ix := corpusIx(t,
		"stop stop stop",
		"stop go",
		"go go",
	)
	reg := pred.Default()
	q, err := lang.Parse(lang.DialectCOMP, `EVERY p (p HAS 'stop')`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Eval(q, ix, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ftc.Query(c, reg, lang.ToFTC(q))
	if err != nil {
		t.Fatal(err)
	}
	if !same(got, want) || !same(got, []core.NodeID{1}) {
		t.Fatalf("EVERY = %v, want [1]", got)
	}
}

func TestCompileError(t *testing.T) {
	reg := pred.Default()
	if _, err := Compile(lang.Pred{Name: "zzz", Vars: []string{"a"}}, reg); err == nil {
		t.Errorf("unknown predicate compiled")
	}
	if _, err := Explain(lang.Pred{Name: "zzz", Vars: []string{"a"}}, reg); err == nil {
		t.Errorf("unknown predicate explained")
	}
}

func TestFullMaterializeOption(t *testing.T) {
	_, ix := corpusIx(t, "aa bb", "bb cc", "aa cc")
	reg := pred.Default()
	q, _ := lang.Parse(lang.DialectBOOL, `'aa' AND NOT 'bb'`)
	a, err := Eval(q, ix, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Eval(q, ix, reg, Options{FullMaterialize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !same(a, b) {
		t.Fatalf("materialization modes disagree: %v vs %v", a, b)
	}
}
