// Package compeval is the COMP evaluation engine of Section 5.4: an
// arbitrary COMP query is translated to its calculus semantics, compiled to
// a full-text algebra expression (the Lemma 2 direction of Theorem 1) and
// evaluated with the materializing relational evaluator of package fta.
// Complexity is polynomial in the data (per-node cartesian products) and
// exponential in the query — the price of completeness, and the baseline
// that PPRED and NPRED beat in the Section 6 experiments.
package compeval

import (
	"fulltext/internal/core"
	"fulltext/internal/fta"
	"fulltext/internal/invlist"
	"fulltext/internal/lang"
	"fulltext/internal/pred"
)

// Options tunes the engine.
type Options struct {
	// FullMaterialize materializes whole relations instead of evaluating
	// node-at-a-time (ablation).
	FullMaterialize bool
	// Scorer ranks results (nil: Boolean evaluation).
	Scorer fta.Scorer
}

// Compile translates a COMP query into its algebra plan.
func Compile(q lang.Query, reg *pred.Registry) (fta.Expr, error) {
	return fta.Compile(lang.ToFTC(q), reg)
}

// Eval evaluates a COMP query and returns the qualifying nodes in order.
func Eval(q lang.Query, ix *invlist.Index, reg *pred.Registry, opts Options) ([]core.NodeID, error) {
	res, err := EvalScored(q, ix, reg, opts)
	if err != nil {
		return nil, err
	}
	return res.Nodes, nil
}

// EvalScored evaluates a COMP query, returning nodes and (when a scorer is
// configured) per-node scores. TuplesBuilt in the returned evaluator work
// estimate is exposed through Explain-style instrumentation in tests.
func EvalScored(q lang.Query, ix *invlist.Index, reg *pred.Registry, opts Options) (*fta.Result, error) {
	plan, err := Compile(q, reg)
	if err != nil {
		return nil, err
	}
	ev := &fta.Evaluator{Index: ix, Reg: reg, Scorer: opts.Scorer, FullMaterialize: opts.FullMaterialize}
	return ev.Eval(plan)
}

// Explain renders the algebra plan of a query as a Figure 4 style operator
// tree.
func Explain(q lang.Query, reg *pred.Registry) (string, error) {
	plan, err := Compile(q, reg)
	if err != nil {
		return "", err
	}
	return fta.Tree(plan), nil
}
