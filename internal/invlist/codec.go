package invlist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"fulltext/internal/core"
)

// Binary index format, stdlib only (encoding/binary varints):
//
//	magic "FTIX" | version uvarint
//	cnodes uvarint
//	posCount[cnodes] uvarint each
//	uniqueCount[cnodes] uvarint each
//	ntokens uvarint
//	per token (sorted):
//	  len(token) uvarint | token bytes
//	  nentries uvarint
//	  per entry: node-delta uvarint | npos uvarint |
//	    per pos: ord-delta uvarint | para-delta uvarint | sent-delta uvarint
//	stats-block flag uvarint (version >= 2; 1 = block follows)
//	  norms[cnodes] float64 (little-endian bits)
//	  per token (same sorted order): maxTFNorm float64 | maxOcc uvarint
//	block section (version >= 3, only when stats-block flag == 1):
//	  blockSize uvarint
//	  per token (same sorted order):
//	    nblocks uvarint
//	    per block: (first - prev block's last) uvarint | (last - first) uvarint |
//	      maxOcc uvarint | maxTFNorm float64 (little-endian bits)
//
// IL_ANY is not stored; it is rebuilt from the token lists on load, which
// keeps the format smaller and guarantees IL_ANY consistency. The stats
// block (node norms and per-list score upper bounds, see stats.go) is
// derivable from the lists but costs a full pass, so version 2 freezes the
// standalone block at write time and loaded indexes serve their first
// ranked query without recomputing it. Version 3 appends the per-block
// score bounds (block-max WAND skip metadata); streams from older versions
// load fine — the index synthesizes blocks lazily — and older readers
// reject version-3 streams cleanly via the version check.
const (
	codecMagic      = "FTIX"
	codecVersion    = 3
	codecMinVersion = 1
)

// WriteOptions tunes WriteToWith.
type WriteOptions struct {
	// OmitStatsBlock writes stats-block flag 0 instead of freezing the
	// standalone scoring-statistics block. Containers that persist their own
	// statistics (the FTSS sharded/segmented format stores per-segment
	// blocks computed against *global* collection statistics, which is what
	// sharded serving actually reads) set this so the standalone block — a
	// full float64 per node plus two values per token that such deployments
	// never use — is not written at all. Loading a block-less stream simply
	// recomputes the block lazily on the first standalone ranked query.
	OmitStatsBlock bool
}

// WriteTo serializes the index with the standalone scoring-statistics block
// included. It implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	return ix.WriteToWith(w, WriteOptions{})
}

// WriteToWith serializes the index with explicit options.
func (ix *Index) WriteToWith(w io.Writer, o WriteOptions) (int64, error) {
	return ix.writeToVersion(w, o, codecVersion)
}

// writeToVersion serializes at an explicit codec version. Only the current
// version is written in production; tests use older versions to produce
// legacy fixtures for the lazy block-synthesis path.
func (ix *Index) writeToVersion(w io.Writer, o WriteOptions, version int) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}

	if _, err := cw.Write([]byte(codecMagic)); err != nil {
		return cw.n, err
	}
	writeUvarint(cw, uint64(version))
	writeUvarint(cw, uint64(len(ix.posCount)))
	for _, v := range ix.posCount {
		writeUvarint(cw, uint64(v))
	}
	for _, v := range ix.uniqueCount {
		writeUvarint(cw, uint64(v))
	}

	toks := ix.Tokens()
	writeUvarint(cw, uint64(len(toks)))
	for _, tok := range toks {
		pl := ix.lists[tok]
		writeUvarint(cw, uint64(len(tok)))
		if _, err := cw.Write([]byte(tok)); err != nil {
			return cw.n, err
		}
		writeUvarint(cw, uint64(len(pl.Entries)))
		prevNode := uint64(0)
		for _, e := range pl.Entries {
			writeUvarint(cw, uint64(e.Node)-prevNode)
			prevNode = uint64(e.Node)
			writeUvarint(cw, uint64(len(e.Pos)))
			var prev core.Pos
			for _, p := range e.Pos {
				writeUvarint(cw, uint64(p.Ord-prev.Ord))
				writeUvarint(cw, uint64(p.Para-prev.Para))
				writeUvarint(cw, uint64(p.Sent-prev.Sent))
				prev = p
			}
		}
	}

	// Stats block (self statistics): computed here if no ranked query has
	// warmed it yet. Deterministic, so repeated WriteTo calls produce
	// identical bytes (the sharded container relies on that).
	if o.OmitStatsBlock || version < 2 {
		if version >= 2 {
			writeUvarint(cw, 0)
		}
	} else {
		writeUvarint(cw, 1)
		blk := ix.StatsBlock(nil)
		if _, err := WriteStatsBlockTo(cw, blk, toks); err != nil {
			return cw.n, err
		}
		if version >= 3 {
			if _, err := WriteBlockSectionTo(cw, blk, toks); err != nil {
				return cw.n, err
			}
		}
	}

	if cw.err != nil {
		return cw.n, cw.err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadFrom deserializes an index written by WriteTo.
func ReadFrom(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(codecMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("invlist: reading magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("invlist: bad magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("invlist: reading version: %w", err)
	}
	if version < codecMinVersion || version > codecVersion {
		return nil, fmt.Errorf("invlist: unsupported version %d", version)
	}
	cnodes, err := readCount(br, "cnodes")
	if err != nil {
		return nil, err
	}

	ix := &Index{
		lists:       make(map[string]*PostingList),
		any:         &PostingList{},
		posCount:    make([]int32, cnodes),
		uniqueCount: make([]int32, cnodes),
	}
	for i := range ix.posCount {
		v, err := readCount(br, "posCount")
		if err != nil {
			return nil, err
		}
		ix.posCount[i] = int32(v)
	}
	for i := range ix.uniqueCount {
		v, err := readCount(br, "uniqueCount")
		if err != nil {
			return nil, err
		}
		ix.uniqueCount[i] = int32(v)
	}

	ntokens, err := readCount(br, "ntokens")
	if err != nil {
		return nil, err
	}
	tokOrder := make([]string, 0, ntokens)
	for t := 0; t < ntokens; t++ {
		tlen, err := readCount(br, "token length")
		if err != nil {
			return nil, err
		}
		if tlen > 1<<20 {
			return nil, fmt.Errorf("invlist: token length %d too large", tlen)
		}
		buf := make([]byte, tlen)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("invlist: reading token: %w", err)
		}
		tok := string(buf)
		nentries, err := readCount(br, "entry count")
		if err != nil {
			return nil, err
		}
		pl := &PostingList{Token: tok, Entries: make([]Entry, 0, nentries)}
		prevNode := uint64(0)
		for e := 0; e < nentries; e++ {
			nd, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("invlist: reading node delta: %w", err)
			}
			prevNode += nd
			if prevNode == 0 || prevNode > uint64(cnodes) {
				return nil, fmt.Errorf("invlist: node id %d out of range [1,%d]", prevNode, cnodes)
			}
			npos, err := readCount(br, "position count")
			if err != nil {
				return nil, err
			}
			pos := make([]core.Pos, npos)
			var prev core.Pos
			for pi := 0; pi < npos; pi++ {
				od, err1 := binary.ReadUvarint(br)
				pd, err2 := binary.ReadUvarint(br)
				sd, err3 := binary.ReadUvarint(br)
				if err1 != nil || err2 != nil || err3 != nil {
					return nil, fmt.Errorf("invlist: reading position: truncated stream")
				}
				prev = core.Pos{Ord: prev.Ord + int32(od), Para: prev.Para + int32(pd), Sent: prev.Sent + int32(sd)}
				pos[pi] = prev
			}
			pl.Entries = append(pl.Entries, Entry{Node: core.NodeID(prevNode), Pos: pos})
		}
		ix.lists[tok] = pl
		tokOrder = append(tokOrder, tok)
	}

	if version >= 2 {
		flag, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("invlist: reading stats-block flag: %w", err)
		}
		switch flag {
		case 0:
		case 1:
			blk, err := ReadStatsBlockFrom(br, cnodes, tokOrder)
			if err != nil {
				return nil, err
			}
			if version >= 3 {
				size, blocks, err := ReadBlockSectionFrom(br, tokOrder)
				if err != nil {
					return nil, err
				}
				blk.BlockSize = size
				blk.Blocks = blocks
			}
			ix.SetStatsBlock(nil, blk)
		default:
			return nil, fmt.Errorf("invlist: bad stats-block flag %d", flag)
		}
	}

	ix.rebuildAny()
	ix.recomputeStats()
	return ix, nil
}

// rebuildAny reconstructs IL_ANY by merging every token list per node and
// sorting positions by ordinal. Nodes with zero positions still get an
// (empty) entry so NOT semantics can enumerate the whole search context.
func (ix *Index) rebuildAny() {
	perNode := make([][]core.Pos, len(ix.posCount))
	for _, pl := range ix.lists {
		for _, e := range pl.Entries {
			i := int(e.Node) - 1
			perNode[i] = append(perNode[i], e.Pos...)
		}
	}
	ix.any = &PostingList{}
	for i, pos := range perNode {
		sort.Slice(pos, func(a, b int) bool { return pos[a].Ord < pos[b].Ord })
		ix.any.Entries = append(ix.any.Entries, Entry{Node: core.NodeID(i + 1), Pos: pos})
	}
}

func readCount(br io.ByteReader, what string) (int, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("invlist: reading %s: %w", what, err)
	}
	if v > 1<<31 {
		return 0, fmt.Errorf("invlist: %s %d too large", what, v)
	}
	return int(v), nil
}

type countWriter struct {
	w   io.Writer
	n   int64
	err error
	buf [binary.MaxVarintLen64]byte
}

func (cw *countWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.err = err
	return n, err
}

func writeUvarint(cw *countWriter, v uint64) {
	if cw.err != nil {
		return
	}
	n := binary.PutUvarint(cw.buf[:], v)
	_, _ = cw.Write(cw.buf[:n])
}

// WriteStatsBlockTo serializes a stats block body — norms as little-endian
// float64 bits, then per token (in toks order) its MaxTFNorm bound and
// MaxOcc count — returning the bytes written. It is the single source of
// the block layout, shared by this codec's version-2 section and the FTSS
// sharded container (which persists per-shard global-statistics blocks).
func WriteStatsBlockTo(w io.Writer, b *StatsBlock, toks []string) (int64, error) {
	var n int64
	var buf [binary.MaxVarintLen64]byte
	putFloat := func(v float64) error {
		binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(v))
		m, err := w.Write(buf[:8])
		n += int64(m)
		return err
	}
	putUvarint := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		m, err := w.Write(buf[:k])
		n += int64(m)
		return err
	}
	for _, v := range b.Norms {
		if err := putFloat(v); err != nil {
			return n, err
		}
	}
	for _, tok := range toks {
		if err := putFloat(b.MaxTFNorm[tok]); err != nil {
			return n, err
		}
		if err := putUvarint(uint64(b.MaxOcc[tok])); err != nil {
			return n, err
		}
	}
	return n, nil
}

// WriteBlockSectionTo serializes the per-block score-bound metadata of a
// stats block — the block size, then per token (in toks order) its block
// directory with node ids delta-encoded across consecutive blocks. Like
// WriteStatsBlockTo it is the single source of the layout, shared by the
// FTIX version-3 section and the FTSS sharded container's per-segment
// global-statistics blocks.
func WriteBlockSectionTo(w io.Writer, b *StatsBlock, toks []string) (int64, error) {
	var n int64
	var buf [binary.MaxVarintLen64]byte
	putFloat := func(v float64) error {
		binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(v))
		m, err := w.Write(buf[:8])
		n += int64(m)
		return err
	}
	putUvarint := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		m, err := w.Write(buf[:k])
		n += int64(m)
		return err
	}
	if err := putUvarint(uint64(b.BlockSize)); err != nil {
		return n, err
	}
	for _, tok := range toks {
		metas := b.Blocks[tok]
		if err := putUvarint(uint64(len(metas))); err != nil {
			return n, err
		}
		prevLast := uint64(0)
		for _, m := range metas {
			if err := putUvarint(uint64(m.First) - prevLast); err != nil {
				return n, err
			}
			if err := putUvarint(uint64(m.Last) - uint64(m.First)); err != nil {
				return n, err
			}
			prevLast = uint64(m.Last)
			if err := putUvarint(uint64(m.MaxOcc)); err != nil {
				return n, err
			}
			if err := putFloat(m.MaxTFNorm); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// ReadBlockSectionFrom reads a block section written by WriteBlockSectionTo
// with the vocabulary toks (in write order).
func ReadBlockSectionFrom(br *bufio.Reader, toks []string) (int, map[string][]BlockMeta, error) {
	size, err := readCount(br, "block size")
	if err != nil {
		return 0, nil, err
	}
	if size <= 0 {
		return 0, nil, fmt.Errorf("invlist: bad block size %d", size)
	}
	blocks := make(map[string][]BlockMeta, len(toks))
	for _, tok := range toks {
		nblocks, err := readCount(br, "block count")
		if err != nil {
			return 0, nil, err
		}
		metas := make([]BlockMeta, nblocks)
		prevLast := uint64(0)
		for i := range metas {
			fd, err := binary.ReadUvarint(br)
			if err != nil {
				return 0, nil, fmt.Errorf("invlist: reading block first delta: %w", err)
			}
			ld, err := binary.ReadUvarint(br)
			if err != nil {
				return 0, nil, fmt.Errorf("invlist: reading block last delta: %w", err)
			}
			first := prevLast + fd
			last := first + ld
			prevLast = last
			mo, err := readCount(br, "block max occurrences")
			if err != nil {
				return 0, nil, err
			}
			var b8 [8]byte
			if _, err := io.ReadFull(br, b8[:]); err != nil {
				return 0, nil, fmt.Errorf("invlist: reading block bound: %w", err)
			}
			metas[i] = BlockMeta{
				First:     core.NodeID(first),
				Last:      core.NodeID(last),
				MaxOcc:    int32(mo),
				MaxTFNorm: math.Float64frombits(binary.LittleEndian.Uint64(b8[:])),
			}
		}
		blocks[tok] = metas
	}
	return size, blocks, nil
}

// ReadStatsBlockFrom reads a stats block body written by WriteStatsBlockTo
// with nnorms norms and the vocabulary toks (in write order).
func ReadStatsBlockFrom(br *bufio.Reader, nnorms int, toks []string) (*StatsBlock, error) {
	readFloat := func() (float64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
	}
	blk := &StatsBlock{
		Norms:     make([]float64, nnorms),
		MaxTFNorm: make(map[string]float64, len(toks)),
		MaxOcc:    make(map[string]int, len(toks)),
	}
	var err error
	for i := range blk.Norms {
		if blk.Norms[i], err = readFloat(); err != nil {
			return nil, fmt.Errorf("invlist: reading node norm: %w", err)
		}
	}
	for _, tok := range toks {
		v, err := readFloat()
		if err != nil {
			return nil, fmt.Errorf("invlist: reading token upper bound: %w", err)
		}
		mo, err := readCount(br, "token max occurrences")
		if err != nil {
			return nil, err
		}
		blk.MaxTFNorm[tok] = v
		blk.MaxOcc[tok] = mo
	}
	return blk, nil
}
