package invlist

import (
	"bytes"
	"math"
	"testing"

	"fulltext/internal/core"
)

func buildStatsIndex(t testing.TB) *Index {
	t.Helper()
	c := core.NewCorpus()
	docs := [][]string{
		{"a", "b", "a", "c"},
		{"b", "c"},
		{"a", "a", "a"},
		{"d"},
		{"c", "d", "a", "b", "b"},
	}
	for i, toks := range docs {
		if _, err := c.AddTokens(string(rune('0'+i)), toks, core.PositionsForTokens(len(toks))); err != nil {
			t.Fatal(err)
		}
	}
	return Build(c)
}

// TestStatsBlockNorms cross-checks the cached norms against a direct
// per-node recomputation from the definition.
func TestStatsBlockNorms(t *testing.T) {
	ix := buildStatsIndex(t)
	blk := ix.StatsBlock(nil)
	if len(blk.Norms) != ix.NumNodes() {
		t.Fatalf("norms len %d, want %d", len(blk.Norms), ix.NumNodes())
	}
	for n := core.NodeID(1); int(n) <= ix.NumNodes(); n++ {
		var sq float64
		for _, tok := range ix.Tokens() {
			e := ix.List(tok).Find(n)
			if e == nil {
				continue
			}
			u := float64(ix.NodeUniqueTokens(n))
			tf := float64(len(e.Pos)) / u
			idf := IDF(ix, tok)
			sq += tf * idf * tf * idf
		}
		want := math.Sqrt(sq)
		if got := blk.Norm(n); math.Abs(got-want) > 1e-12 {
			t.Fatalf("node %d: norm %g, want %g", n, got, want)
		}
	}
	if blk.Norm(0) != 0 || blk.Norm(core.NodeID(ix.NumNodes()+1)) != 0 {
		t.Fatal("out-of-range nodes must have norm 0")
	}
	if ix.StatsBlock(ix) != blk {
		t.Fatal("StatsBlock(self) must return the cached self block")
	}
}

// TestStatsBlockBounds checks MaxTFNorm dominates every entry's tf/norm
// and MaxOcc every entry's position count.
func TestStatsBlockBounds(t *testing.T) {
	ix := buildStatsIndex(t)
	blk := ix.StatsBlock(nil)
	for _, tok := range ix.Tokens() {
		pl := ix.List(tok)
		for i := range pl.Entries {
			e := &pl.Entries[i]
			if len(e.Pos) > blk.MaxOcc[tok] {
				t.Fatalf("%s: entry with %d positions exceeds MaxOcc %d", tok, len(e.Pos), blk.MaxOcc[tok])
			}
			u := float64(ix.NodeUniqueTokens(e.Node))
			nn := blk.Norm(e.Node)
			if u == 0 || nn == 0 {
				continue
			}
			if v := float64(len(e.Pos)) / u / nn; v > blk.MaxTFNorm[tok] {
				t.Fatalf("%s: entry tf/norm %g exceeds MaxTFNorm %g", tok, v, blk.MaxTFNorm[tok])
			}
		}
	}
}

// TestStatsBlockExternalKey checks external statistics sources get their
// own cached block, keyed by identity.
func TestStatsBlockExternalKey(t *testing.T) {
	ix := buildStatsIndex(t)
	ext := &fakeStats{nodes: 1000, df: map[string]int{"a": 900, "b": 10, "c": 50, "d": 2}}
	b1 := ix.StatsBlock(ext)
	if b1 == ix.StatsBlock(nil) {
		t.Fatal("external block must differ from the self block")
	}
	if ix.StatsBlock(ext) != b1 {
		t.Fatal("external block must be cached per identity")
	}
	ix.InvalidateStats()
	if ix.StatsBlock(ext) == b1 {
		t.Fatal("InvalidateStats must drop cached blocks")
	}
}

type fakeStats struct {
	nodes int
	df    map[string]int
}

func (f *fakeStats) NumNodes() int     { return f.nodes }
func (f *fakeStats) DF(tok string) int { return f.df[tok] }

// TestCodecStatsBlockRoundTrip checks version-2 serialization freezes the
// self block and the loaded index serves it without recomputation.
func TestCodecStatsBlockRoundTrip(t *testing.T) {
	ix := buildStatsIndex(t)
	want := ix.StatsBlock(nil)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.StatsBlock(nil)
	if len(got.Norms) != len(want.Norms) {
		t.Fatalf("norms len %d, want %d", len(got.Norms), len(want.Norms))
	}
	for i := range want.Norms {
		if got.Norms[i] != want.Norms[i] {
			t.Fatalf("norm[%d] = %g, want %g (must be bit-identical)", i, got.Norms[i], want.Norms[i])
		}
	}
	for _, tok := range ix.Tokens() {
		if got.MaxTFNorm[tok] != want.MaxTFNorm[tok] || got.MaxOcc[tok] != want.MaxOcc[tok] {
			t.Fatalf("%s: block (%g,%d), want (%g,%d)", tok,
				got.MaxTFNorm[tok], got.MaxOcc[tok], want.MaxTFNorm[tok], want.MaxOcc[tok])
		}
	}
	// Deterministic re-serialization (the sharded container length-prefix
	// relies on it).
	var buf2, buf3 bytes.Buffer
	if _, err := ix.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.WriteTo(&buf3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
		t.Fatal("serialization must be deterministic across save/load")
	}
}

// TestCursorSeek exercises the galloping Seek against a scan oracle.
func TestCursorSeek(t *testing.T) {
	pl := &PostingList{Token: "t"}
	nodes := []core.NodeID{2, 3, 5, 8, 13, 21, 34, 55, 89, 144}
	for _, n := range nodes {
		pl.Entries = append(pl.Entries, Entry{Node: n, Pos: []core.Pos{{Ord: int32(n)}}})
	}
	for target := core.NodeID(0); target <= 150; target++ {
		cur := pl.Cursor()
		got, ok := cur.Seek(target)
		var want core.NodeID
		var wantOK bool
		for _, n := range nodes {
			if n >= target {
				want, wantOK = n, true
				break
			}
		}
		if ok != wantOK || got != want {
			t.Fatalf("Seek(%d) = (%d,%v), want (%d,%v)", target, got, ok, want, wantOK)
		}
		if ok {
			if cur.Node() != want {
				t.Fatalf("Seek(%d): cursor Node() %d, want %d", target, cur.Node(), want)
			}
			if len(cur.Positions()) != 1 || cur.Positions()[0].Ord != int32(want) {
				t.Fatalf("Seek(%d): positions not aligned with entry", target)
			}
		}
	}

	// Seek never moves backward and is stable at the current entry.
	cur := pl.Cursor()
	if n, ok := cur.Seek(50); !ok || n != 55 {
		t.Fatalf("Seek(50) = (%d,%v), want (55,true)", n, ok)
	}
	if n, ok := cur.Seek(10); !ok || n != 55 {
		t.Fatalf("backward Seek(10) = (%d,%v), want to stay at (55,true)", n, ok)
	}
	if n, ok := cur.Seek(55); !ok || n != 55 {
		t.Fatalf("Seek(55) = (%d,%v), want (55,true)", n, ok)
	}
	if n, ok := cur.NextEntry(); !ok || n != 89 {
		t.Fatalf("NextEntry after Seek = (%d,%v), want (89,true)", n, ok)
	}
	if _, ok := cur.Seek(1000); ok || !cur.Done() {
		t.Fatal("Seek past the end must exhaust the cursor")
	}
	if _, ok := cur.Seek(1); ok {
		t.Fatal("Seek on an exhausted cursor must fail")
	}

	// Empty list.
	empty := (&PostingList{}).Cursor()
	if _, ok := empty.Seek(1); ok {
		t.Fatal("Seek on empty list must fail")
	}
}
