package invlist

import "fulltext/internal/core"

// Cursor is the paper's sequential inverted-list access API (Section 5.1.2):
// NextEntry advances to the next (cn, PosList) entry and returns the context
// node id; Positions returns the position list of the current entry. Both
// operations are O(1). There is no random access.
//
// Cursor additionally counts its operations so that tests and the benchmark
// harness can verify the single-scan claims of Sections 5.5 and 5.6.
type Cursor struct {
	list *PostingList
	i    int // index of the current entry; -1 before the first NextEntry

	// Counters for the complexity instrumentation.
	EntrySteps int // number of NextEntry calls that returned an entry
}

// Cursor returns a fresh sequential cursor over the list.
func (pl *PostingList) Cursor() *Cursor {
	return &Cursor{list: pl, i: -1}
}

// NextEntry moves the cursor to the next entry and returns its context-node
// id. ok is false when the list is exhausted.
func (c *Cursor) NextEntry() (node core.NodeID, ok bool) {
	if c.i+1 >= len(c.list.Entries) {
		c.i = len(c.list.Entries)
		return 0, false
	}
	c.i++
	c.EntrySteps++
	return c.list.Entries[c.i].Node, true
}

// Node returns the context-node id of the current entry (0 when the cursor
// is not positioned on an entry).
func (c *Cursor) Node() core.NodeID {
	if c.i < 0 || c.i >= len(c.list.Entries) {
		return 0
	}
	return c.list.Entries[c.i].Node
}

// Positions returns the PosList of the current entry (the paper's
// getPositions()). It returns nil when the cursor is not positioned on an
// entry. The returned slice is shared with the index and must not be
// mutated.
func (c *Cursor) Positions() []core.Pos {
	if c.i < 0 || c.i >= len(c.list.Entries) {
		return nil
	}
	return c.list.Entries[c.i].Pos
}

// Done reports whether the cursor has been exhausted.
func (c *Cursor) Done() bool { return c.i >= len(c.list.Entries) }
