package invlist

import (
	"sort"

	"fulltext/internal/core"
)

// Cursor is the paper's sequential inverted-list access API (Section 5.1.2):
// NextEntry advances to the next (cn, PosList) entry and returns the context
// node id; Positions returns the position list of the current entry. Both
// operations are O(1). There is no random access.
//
// Cursor additionally counts its operations so that tests and the benchmark
// harness can verify the single-scan claims of Sections 5.5 and 5.6.
type Cursor struct {
	list *PostingList
	i    int // index of the current entry; -1 before the first NextEntry

	// Counters for the complexity instrumentation.
	EntrySteps int // number of NextEntry calls that returned an entry
	SeekSteps  int // number of gallop/binary probes performed by Seek
	BlockSkips int // number of block boundaries crossed via the block directory
}

// EntryIndex returns the ordinal position of the current entry within the
// list (-1 before the first NextEntry/Seek). The block-max evaluator uses
// it to map the cursor position to a block: entry i lies in block
// i/blockSize.
func (c *Cursor) EntryIndex() int { return c.i }

// Cursor returns a fresh sequential cursor over the list.
func (pl *PostingList) Cursor() *Cursor {
	return &Cursor{list: pl, i: -1}
}

// NextEntry moves the cursor to the next entry and returns its context-node
// id. ok is false when the list is exhausted.
func (c *Cursor) NextEntry() (node core.NodeID, ok bool) {
	if c.i+1 >= len(c.list.Entries) {
		c.i = len(c.list.Entries)
		return 0, false
	}
	c.i++
	c.EntrySteps++
	return c.list.Entries[c.i].Node, true
}

// Node returns the context-node id of the current entry (0 when the cursor
// is not positioned on an entry).
func (c *Cursor) Node() core.NodeID {
	if c.i < 0 || c.i >= len(c.list.Entries) {
		return 0
	}
	return c.list.Entries[c.i].Node
}

// Positions returns the PosList of the current entry (the paper's
// getPositions()). It returns nil when the cursor is not positioned on an
// entry. The returned slice is shared with the index and must not be
// mutated.
func (c *Cursor) Positions() []core.Pos {
	if c.i < 0 || c.i >= len(c.list.Entries) {
		return nil
	}
	return c.list.Entries[c.i].Pos
}

// Seek advances the cursor forward to the first entry whose context-node id
// is >= node and returns that id. It never moves backward: when the cursor
// is already positioned at or past node it stays put. ok is false when no
// such entry remains (the cursor is then exhausted). Seek gallops — probe
// distances double until the target is bracketed, then binary-search the
// bracket — so skipping d entries costs O(log d), which is what makes
// WAND-style top-K pruning cheaper than scanning.
func (c *Cursor) Seek(node core.NodeID) (core.NodeID, bool) {
	es := c.list.Entries
	start := c.i
	if start < 0 {
		start = 0
	}
	if start >= len(es) {
		c.i = len(es)
		return 0, false
	}
	if es[start].Node >= node {
		c.i = start
		return es[start].Node, true
	}
	// es[start].Node < node: gallop to bracket the target in (lo, hi].
	lo, hi := start, len(es)-1
	step := 1
	for lo+step <= hi && es[lo+step].Node < node {
		lo += step
		step *= 2
		c.SeekSteps++
	}
	if lo+step < hi {
		hi = lo + step
	}
	if es[hi].Node < node {
		c.i = len(es)
		return 0, false
	}
	k := sort.Search(hi-lo, func(k int) bool {
		c.SeekSteps++
		return es[lo+1+k].Node >= node
	})
	c.i = lo + 1 + k
	return es[c.i].Node, true
}

// SeekBlock advances the cursor forward to the first entry with id >= node,
// like Seek, but consults the list's block directory first: when the target
// lies beyond the current block it binary-searches the directory for the
// first block whose Last id reaches node and jumps straight to that block's
// first entry, then finishes with a local Seek. Skipped blocks cost one
// directory probe instead of O(log d) entry probes, and BlockSkips counts
// the block boundaries crossed through the directory. metas/size must be
// the block directory and block size of this cursor's list (from the
// governing StatsBlock); with an empty directory it degrades to plain Seek.
func (c *Cursor) SeekBlock(metas []BlockMeta, size int, node core.NodeID) (core.NodeID, bool) {
	es := c.list.Entries
	cur := c.i
	if cur < 0 {
		cur = 0
	}
	if cur >= len(es) {
		c.i = len(es)
		return 0, false
	}
	if len(metas) == 0 || size <= 0 {
		return c.Seek(node)
	}
	cb := cur / size
	if cb >= len(metas) || metas[cb].Last >= node {
		// Target is inside the current block (or the directory is stale
		// short): a local gallop is already cheap.
		return c.Seek(node)
	}
	// Directory search over the blocks after cb for the first one that can
	// contain node.
	k := sort.Search(len(metas)-cb-1, func(k int) bool {
		c.SeekSteps++
		return metas[cb+1+k].Last >= node
	})
	tb := cb + 1 + k
	if tb >= len(metas) {
		c.i = len(es)
		return 0, false
	}
	c.BlockSkips += tb - cb
	c.i = tb * size
	if c.i >= len(es) {
		// Defensive: a directory longer than the list cannot happen when
		// metas matches the list, but never index out of range.
		c.i = len(es)
		return 0, false
	}
	if es[c.i].Node >= node {
		return es[c.i].Node, true
	}
	return c.Seek(node)
}

// Done reports whether the cursor has been exhausted.
func (c *Cursor) Done() bool { return c.i >= len(c.list.Entries) }
