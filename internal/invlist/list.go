// Package invlist implements the inverted-list data model of Section 5.1.2:
// for each token tok there is a list IL_tok of (cn, PosList) entries ordered
// by context-node id, with positions ordered by occurrence; IL_ANY holds one
// entry per context node with every position in that node. Lists are
// accessed strictly sequentially through cursors that support the paper's
// nextEntry() and getPositions() operations in O(1) per call.
package invlist

import (
	"sort"

	"fulltext/internal/core"
)

// Entry is one (cn, PosList) pair of an inverted list.
type Entry struct {
	Node core.NodeID
	Pos  []core.Pos // ordered by occurrence within the node
}

// PostingList is the inverted list IL_tok for one token (or IL_ANY).
type PostingList struct {
	Token   string // "" for IL_ANY
	Entries []Entry
}

// Len returns the number of entries (distinct context nodes) in the list.
func (pl *PostingList) Len() int {
	if pl == nil {
		return 0
	}
	return len(pl.Entries)
}

// TotalPositions returns the total number of positions across entries.
func (pl *PostingList) TotalPositions() int {
	if pl == nil {
		return 0
	}
	n := 0
	for _, e := range pl.Entries {
		n += len(e.Pos)
	}
	return n
}

// MaxPositions returns the maximum number of positions in any entry (the
// per-list contribution to pos_per_entry).
func (pl *PostingList) MaxPositions() int {
	if pl == nil {
		return 0
	}
	m := 0
	for _, e := range pl.Entries {
		if len(e.Pos) > m {
			m = len(e.Pos)
		}
	}
	return m
}

// Find returns the entry for node using binary search, or nil. It exists for
// scoring and tests; the query engines use sequential cursors only.
func (pl *PostingList) Find(node core.NodeID) *Entry {
	if pl == nil {
		return nil
	}
	i := sort.Search(len(pl.Entries), func(i int) bool { return pl.Entries[i].Node >= node })
	if i < len(pl.Entries) && pl.Entries[i].Node == node {
		return &pl.Entries[i]
	}
	return nil
}

// Stats aggregates the complexity-model parameters of Section 5.1.2.
type Stats struct {
	CNodes          int // |N|
	PosPerCNode     int // max positions in a context node
	EntriesPerToken int // max entries in any token inverted list
	PosPerEntry     int // max positions in any token inverted-list entry
	Tokens          int // number of distinct tokens with non-empty lists
	TotalPositions  int // total positions across all context nodes
}

// Index is the physical representation of the full-text relations: one
// PostingList per token plus IL_ANY, and the per-node metadata needed for
// scoring (position counts and unique-token counts).
type Index struct {
	lists map[string]*PostingList
	any   *PostingList

	// Per-node metadata, indexed by NodeID-1.
	posCount    []int32
	uniqueCount []int32

	stats Stats

	// blockSize overrides DefaultBlockSize for per-block score metadata
	// when positive (see SetBlockSize).
	blockSize int

	// Lazily computed scoring statistics blocks (see stats.go).
	statsCache
}

// SetBlockSize overrides the posting-list block granularity used for
// per-block score bounds (0 restores DefaultBlockSize). Cached statistics
// blocks are dropped so the next StatsBlock call rebuilds them at the new
// granularity. Tests use small sizes to exercise block boundaries; a huge
// size degenerates to one block per list, i.e. the pre-block per-list
// bounds.
func (ix *Index) SetBlockSize(n int) {
	if n < 0 {
		n = 0
	}
	ix.statsMu.Lock()
	ix.blockSize = n
	ix.statsMu.Unlock()
	ix.InvalidateStats()
}

// List returns IL_tok. For tokens that never occur it returns an empty,
// non-nil list so cursors are always usable.
func (ix *Index) List(tok string) *PostingList {
	if pl, ok := ix.lists[tok]; ok {
		return pl
	}
	return &PostingList{Token: tok}
}

// Any returns IL_ANY.
func (ix *Index) Any() *PostingList { return ix.any }

// Has reports whether the token occurs anywhere in the corpus.
func (ix *Index) Has(tok string) bool {
	_, ok := ix.lists[tok]
	return ok
}

// DF returns the document frequency of tok: the number of context nodes
// containing it (the df(t) term of Section 3.1).
func (ix *Index) DF(tok string) int { return ix.List(tok).Len() }

// Tokens returns the indexed vocabulary in sorted order.
func (ix *Index) Tokens() []string {
	out := make([]string, 0, len(ix.lists))
	for t := range ix.lists {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// NumNodes returns cnodes, the number of context nodes.
func (ix *Index) NumNodes() int { return ix.stats.CNodes }

// NodePositions returns the number of token positions in a node (0 when the
// node id is unknown).
func (ix *Index) NodePositions(n core.NodeID) int {
	i := int(n) - 1
	if i < 0 || i >= len(ix.posCount) {
		return 0
	}
	return int(ix.posCount[i])
}

// NodeUniqueTokens returns the number of distinct tokens in a node (the
// unique_tokens(n) scoring term).
func (ix *Index) NodeUniqueTokens(n core.NodeID) int {
	i := int(n) - 1
	if i < 0 || i >= len(ix.uniqueCount) {
		return 0
	}
	return int(ix.uniqueCount[i])
}

// Stats returns the aggregated complexity parameters.
func (ix *Index) Stats() Stats { return ix.stats }

func (ix *Index) recomputeStats() {
	st := Stats{CNodes: len(ix.posCount), Tokens: len(ix.lists)}
	for _, pc := range ix.posCount {
		if int(pc) > st.PosPerCNode {
			st.PosPerCNode = int(pc)
		}
		st.TotalPositions += int(pc)
	}
	for _, pl := range ix.lists {
		if pl.Len() > st.EntriesPerToken {
			st.EntriesPerToken = pl.Len()
		}
		if m := pl.MaxPositions(); m > st.PosPerEntry {
			st.PosPerEntry = m
		}
	}
	ix.stats = st
}
