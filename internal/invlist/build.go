package invlist

import (
	"fulltext/internal/core"
)

// Build constructs the inverted index for a corpus: IL_tok for every token
// and IL_ANY over all positions, with entries in NodeID order and positions
// in occurrence order, as required by the sequential-access model.
func Build(c *core.Corpus) *Index {
	ix := &Index{
		lists:       make(map[string]*PostingList),
		any:         &PostingList{},
		posCount:    make([]int32, c.Len()),
		uniqueCount: make([]int32, c.Len()),
	}
	for _, d := range c.Docs() {
		ix.addDoc(d)
	}
	ix.recomputeStats()
	return ix
}

// addDoc appends one document. Documents must be added in NodeID order,
// which Build guarantees by iterating the corpus.
func (ix *Index) addDoc(d *core.Doc) {
	perTok := make(map[string][]core.Pos)
	for i, tok := range d.Tokens {
		perTok[tok] = append(perTok[tok], d.Positions[i])
	}
	for tok, pos := range perTok {
		pl := ix.lists[tok]
		if pl == nil {
			pl = &PostingList{Token: tok}
			ix.lists[tok] = pl
		}
		pl.Entries = append(pl.Entries, Entry{Node: d.Node, Pos: pos})
	}
	if d.Len() > 0 {
		all := make([]core.Pos, d.Len())
		copy(all, d.Positions)
		ix.any.Entries = append(ix.any.Entries, Entry{Node: d.Node, Pos: all})
	} else {
		// Empty nodes still appear in IL_ANY so that BOOL's NOT semantics
		// (which enumerate the search context through IL_ANY) see them.
		ix.any.Entries = append(ix.any.Entries, Entry{Node: d.Node})
	}
	idx := int(d.Node) - 1
	ix.posCount[idx] = int32(d.Len())
	ix.uniqueCount[idx] = int32(len(perTok))
}
