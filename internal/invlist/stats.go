package invlist

import (
	"math"
	"sync"
	"sync/atomic"

	"fulltext/internal/core"
)

// CollectionStats abstracts the collection-level statistics scoring depends
// on. A plain *Index satisfies it; a sharded deployment passes
// collection-wide statistics so every shard scores against the whole corpus
// (it mirrors score.CorpusStats, which cannot be imported here without a
// cycle).
type CollectionStats interface {
	// NumNodes returns the collection size db_size (cnodes).
	NumNodes() int
	// DF returns the document frequency df(t).
	DF(tok string) int
}

// IDF computes idf(t) = ln(1 + db_size/df(t)) (Section 3.1). Tokens absent
// from the corpus get idf 0.
func IDF(st CollectionStats, tok string) float64 {
	df := st.DF(tok)
	if df == 0 {
		return 0
	}
	return math.Log(1 + float64(st.NumNodes())/float64(df))
}

// DefaultBlockSize is the posting-list block granularity used when an index
// has no explicit SetBlockSize override: each run of DefaultBlockSize
// consecutive entries of a list forms one block with its own score bounds.
const DefaultBlockSize = 32

// BlockMeta is the per-block metadata of one fixed ordinal-range block of a
// posting list: block k of IL_tok covers entries [k*size, (k+1)*size). The
// evaluator uses First/Last to locate the block covering a target node and
// MaxTFNorm/MaxOcc to bound the score any document inside the block can
// reach, which is what lets it skip whole blocks instead of stepping
// documents.
type BlockMeta struct {
	// First and Last are the context-node ids of the block's first and last
	// entries (entries are node-ordered, so the block covers [First, Last]).
	First, Last core.NodeID
	// MaxOcc is the maximum number of positions in any entry of the block.
	MaxOcc int32
	// MaxTFNorm is max over the block's entries e of tf(e)/||node(e)||₂ —
	// the block-local version of StatsBlock.MaxTFNorm.
	MaxTFNorm float64
}

// StatsBlock is the per-index scoring statistics block: everything the
// ranking models need that costs a full pass over the inverted lists,
// computed once per (index, collection statistics) pair and reused across
// queries. It is the cache that turns per-query model construction from
// O(index) into O(query tokens), and it carries the per-list score upper
// bounds the WAND-style top-K evaluator prunes with.
type StatsBlock struct {
	// Norms holds ||n||₂ per node (indexed by NodeID-1): the L2 norm of the
	// node's TF-IDF vector under the block's collection statistics.
	Norms []float64
	// MaxTFNorm holds, per token, max over the entries e of IL_tok of
	// tf(e)/||node(e)||₂ — the data-dependent factor of the token's largest
	// possible per-node TF-IDF contribution.
	MaxTFNorm map[string]float64
	// MaxOcc holds, per token, the maximum number of positions in any IL_tok
	// entry — the occurrence count behind the PRA noisy-or upper bound.
	MaxOcc map[string]int

	// BlockSize and Blocks carry the per-block refinement of the two maps
	// above: Blocks[tok][k] bounds entries [k*BlockSize, (k+1)*BlockSize) of
	// IL_tok. Blocks is nil on statistics blocks deserialized from codec
	// versions that predate block metadata; the index synthesizes it lazily
	// on first StatsBlock access.
	BlockSize int
	Blocks    map[string][]BlockMeta

	// depN/depDF fingerprint the collection statistics this block was
	// computed against: the collection size and the df of every token in
	// this index's vocabulary, in Tokens() order. Norms and all bounds
	// depend on the collection statistics only through these values, so an
	// identical fingerprint under a new statistics identity means the block
	// can be adopted as-is instead of recomputed (see StatsBlock).
	depN  int
	depDF []int
}

// Norm returns ||n||₂ for a node (0 when the node is unknown or empty).
func (b *StatsBlock) Norm(n core.NodeID) float64 {
	i := int(n) - 1
	if i < 0 || i >= len(b.Norms) {
		return 0
	}
	return b.Norms[i]
}

// maxExternalStatsBlocks bounds the per-identity block cache. Callers are
// expected to reuse one stable statistics identity per deployment (a
// sharded index passes the same wrapper on every query); the bound is a
// backstop so a caller constructing a fresh statistics value per query
// degrades to recomputation instead of unbounded memory growth.
const maxExternalStatsBlocks = 8

// StatsBlock returns the statistics block for this index scored against st
// (pass nil or the index itself for standalone statistics). Blocks are
// computed lazily on first use and cached per st identity for the life of
// the index, so callers must pass the same st value across queries to hit
// the cache; the self block additionally round-trips through the codec so
// loaded indexes serve their first ranked query without the O(index) pass.
func (ix *Index) StatsBlock(st CollectionStats) *StatsBlock {
	self := st == nil
	if !self {
		if six, ok := st.(*Index); ok && six == ix {
			self = true
		}
	}
	ix.statsMu.Lock()
	defer ix.statsMu.Unlock()
	if self {
		if ix.selfBlock == nil {
			ix.selfBlock = ix.computeStatsBlock(ix)
		}
		ix.ensureBlocks(ix.selfBlock)
		return ix.selfBlock
	}
	if b, ok := ix.statsBlocks[st]; ok {
		ix.ensureBlocks(b)
		return b
	}
	// Cache miss under a new statistics identity. Before paying the full
	// recomputation pass, check whether the most recently produced external
	// block was computed against statistics with an identical fingerprint
	// (same collection size and per-vocabulary-token df): a mutation
	// elsewhere in a sharded deployment rolls the shared statistics identity
	// for every segment, but segments whose scoring inputs are unchanged —
	// the common case for update-heavy workloads — can adopt their previous
	// block instead of rebuilding it.
	b := ix.lastExternal
	if b == nil || !ix.depMatches(b, st) {
		b = ix.computeStatsBlock(st)
	}
	if ix.statsBlocks == nil {
		ix.statsBlocks = make(map[CollectionStats]*StatsBlock)
	} else if len(ix.statsBlocks) >= maxExternalStatsBlocks {
		ix.statsBlocks = make(map[CollectionStats]*StatsBlock)
	}
	ix.statsBlocks[st] = b
	ix.lastExternal = b
	ix.ensureBlocks(b)
	return b
}

// StatsBlockIfWarm returns the cached statistics block for st when one is
// already computed (or installed by the persistence layer) and nil
// otherwise. It never triggers the O(index) computation pass — the adaptive
// fan-out planner uses it to rank shards by upper bound without forcing
// cold shards warm on the planning path.
func (ix *Index) StatsBlockIfWarm(st CollectionStats) *StatsBlock {
	self := st == nil
	if !self {
		if six, ok := st.(*Index); ok && six == ix {
			self = true
		}
	}
	ix.statsMu.Lock()
	defer ix.statsMu.Unlock()
	if self {
		return ix.selfBlock
	}
	return ix.statsBlocks[st]
}

// StatsBlockBuilds returns the number of full statistics-block computation
// passes this index has performed. Tests use it to verify that mutations
// elsewhere in a sharded deployment do not force untouched segments to
// rebuild their blocks.
func (ix *Index) StatsBlockBuilds() int64 { return ix.builds.Load() }

// depMatches reports whether b's recorded statistics fingerprint equals what
// st would produce for this index's vocabulary.
func (ix *Index) depMatches(b *StatsBlock, st CollectionStats) bool {
	if b.depDF == nil || b.depN != st.NumNodes() || len(b.depDF) != len(ix.lists) {
		return false
	}
	for i, tok := range ix.Tokens() {
		if b.depDF[i] != st.DF(tok) {
			return false
		}
	}
	return true
}

// InvalidateStats drops every cached statistics block. It exists for
// benchmarks and tests that measure the cold, per-query recomputation
// baseline; production code never needs it (the index is immutable).
func (ix *Index) InvalidateStats() {
	ix.statsMu.Lock()
	defer ix.statsMu.Unlock()
	ix.selfBlock = nil
	ix.statsBlocks = nil
	ix.lastExternal = nil
}

// SetStatsBlock installs a precomputed block for st (nil: the self block),
// bypassing computation. It is the persistence load path: the codec
// installs the deserialized standalone block, and the sharded container
// installs each shard's global-statistics block keyed by the container's
// shared statistics identity.
func (ix *Index) SetStatsBlock(st CollectionStats, b *StatsBlock) {
	ix.statsMu.Lock()
	defer ix.statsMu.Unlock()
	if st == nil {
		ix.selfBlock = b
		return
	}
	if b.depDF == nil {
		ix.captureDeps(b, st)
	}
	if ix.statsBlocks == nil {
		ix.statsBlocks = make(map[CollectionStats]*StatsBlock)
	}
	ix.statsBlocks[st] = b
	ix.lastExternal = b
}

// captureDeps records the statistics fingerprint the block depends on, so a
// later identity roll with unchanged inputs can adopt it (see StatsBlock).
func (ix *Index) captureDeps(b *StatsBlock, st CollectionStats) {
	b.depN = st.NumNodes()
	b.depDF = make([]int, 0, len(ix.lists))
	for _, tok := range ix.Tokens() {
		b.depDF = append(b.depDF, st.DF(tok))
	}
}

// computeStatsBlock performs the one-off full pass: node norms first (the
// token iteration order matches the historical score.NodeNormsWith exactly,
// so cached and uncached scores are bit-identical), then the per-token
// maxima over tf/||n||₂ and entry positions.
func (ix *Index) computeStatsBlock(st CollectionStats) *StatsBlock {
	ix.builds.Add(1)
	b := &StatsBlock{
		Norms:     make([]float64, len(ix.posCount)),
		MaxTFNorm: make(map[string]float64, len(ix.lists)),
		MaxOcc:    make(map[string]int, len(ix.lists)),
		BlockSize: ix.blockSizeOrDefault(),
		Blocks:    make(map[string][]BlockMeta, len(ix.lists)),
	}
	toks := ix.Tokens()
	sq := make([]float64, len(ix.posCount))
	for _, tok := range toks {
		idf := IDF(st, tok)
		pl := ix.lists[tok]
		for i := range pl.Entries {
			e := &pl.Entries[i]
			u := ix.NodeUniqueTokens(e.Node)
			if u == 0 {
				continue
			}
			tf := float64(len(e.Pos)) / float64(u)
			sq[int(e.Node)-1] += tf * idf * tf * idf
		}
	}
	for i, v := range sq {
		if v > 0 {
			b.Norms[i] = math.Sqrt(v)
		}
	}
	for _, tok := range toks {
		metas := ix.computeBlocks(ix.lists[tok], b.Norms, b.BlockSize)
		var maxTF float64
		var maxOcc int
		for i := range metas {
			if int(metas[i].MaxOcc) > maxOcc {
				maxOcc = int(metas[i].MaxOcc)
			}
			if metas[i].MaxTFNorm > maxTF {
				maxTF = metas[i].MaxTFNorm
			}
		}
		b.MaxTFNorm[tok] = maxTF
		b.MaxOcc[tok] = maxOcc
		b.Blocks[tok] = metas
	}
	ix.captureDeps(b, st)
	return b
}

// computeBlocks builds the per-block metadata for one posting list: block k
// covers entries [k*size, (k+1)*size). The per-entry arithmetic matches
// computeStatsBlock's historical per-token maxima pass exactly, so the
// global maxima derived from blocks are bit-identical to the pre-block code.
func (ix *Index) computeBlocks(pl *PostingList, norms []float64, size int) []BlockMeta {
	n := pl.Len()
	if n == 0 {
		return nil
	}
	metas := make([]BlockMeta, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		m := BlockMeta{First: pl.Entries[lo].Node, Last: pl.Entries[hi-1].Node}
		for i := lo; i < hi; i++ {
			e := &pl.Entries[i]
			if int32(len(e.Pos)) > m.MaxOcc {
				m.MaxOcc = int32(len(e.Pos))
			}
			u := ix.NodeUniqueTokens(e.Node)
			ni := int(e.Node) - 1
			if u == 0 || ni < 0 || ni >= len(norms) || norms[ni] == 0 {
				continue
			}
			if v := float64(len(e.Pos)) / float64(u) / norms[ni]; v > m.MaxTFNorm {
				m.MaxTFNorm = v
			}
		}
		metas = append(metas, m)
	}
	return metas
}

// ensureBlocks synthesizes the per-block metadata for a statistics block
// that was deserialized from a codec version predating blocks (Blocks nil).
// Called with statsMu held; the synthesized blocks reuse the block's own
// Norms, so they are exactly what computeStatsBlock would have produced.
func (ix *Index) ensureBlocks(b *StatsBlock) {
	if b == nil || b.Blocks != nil {
		return
	}
	if b.BlockSize <= 0 {
		b.BlockSize = ix.blockSizeOrDefault()
	}
	blocks := make(map[string][]BlockMeta, len(ix.lists))
	for tok, pl := range ix.lists {
		blocks[tok] = ix.computeBlocks(pl, b.Norms, b.BlockSize)
	}
	b.Blocks = blocks
}

func (ix *Index) blockSizeOrDefault() int {
	if ix.blockSize > 0 {
		return ix.blockSize
	}
	return DefaultBlockSize
}

// statsCache is embedded in Index; split out so the zero value documents
// itself and Index stays readable.
type statsCache struct {
	statsMu     sync.Mutex
	selfBlock   *StatsBlock
	statsBlocks map[CollectionStats]*StatsBlock
	// lastExternal is the most recent externally-keyed block, kept outside
	// statsBlocks so it survives the maxExternalStatsBlocks backstop reset
	// and stays available for fingerprint adoption across identity rolls.
	lastExternal *StatsBlock
	// builds counts full computeStatsBlock passes (see StatsBlockBuilds).
	builds atomic.Int64
}
