package invlist

import (
	"math"
	"sync"

	"fulltext/internal/core"
)

// CollectionStats abstracts the collection-level statistics scoring depends
// on. A plain *Index satisfies it; a sharded deployment passes
// collection-wide statistics so every shard scores against the whole corpus
// (it mirrors score.CorpusStats, which cannot be imported here without a
// cycle).
type CollectionStats interface {
	// NumNodes returns the collection size db_size (cnodes).
	NumNodes() int
	// DF returns the document frequency df(t).
	DF(tok string) int
}

// IDF computes idf(t) = ln(1 + db_size/df(t)) (Section 3.1). Tokens absent
// from the corpus get idf 0.
func IDF(st CollectionStats, tok string) float64 {
	df := st.DF(tok)
	if df == 0 {
		return 0
	}
	return math.Log(1 + float64(st.NumNodes())/float64(df))
}

// StatsBlock is the per-index scoring statistics block: everything the
// ranking models need that costs a full pass over the inverted lists,
// computed once per (index, collection statistics) pair and reused across
// queries. It is the cache that turns per-query model construction from
// O(index) into O(query tokens), and it carries the per-list score upper
// bounds the WAND-style top-K evaluator prunes with.
type StatsBlock struct {
	// Norms holds ||n||₂ per node (indexed by NodeID-1): the L2 norm of the
	// node's TF-IDF vector under the block's collection statistics.
	Norms []float64
	// MaxTFNorm holds, per token, max over the entries e of IL_tok of
	// tf(e)/||node(e)||₂ — the data-dependent factor of the token's largest
	// possible per-node TF-IDF contribution.
	MaxTFNorm map[string]float64
	// MaxOcc holds, per token, the maximum number of positions in any IL_tok
	// entry — the occurrence count behind the PRA noisy-or upper bound.
	MaxOcc map[string]int
}

// Norm returns ||n||₂ for a node (0 when the node is unknown or empty).
func (b *StatsBlock) Norm(n core.NodeID) float64 {
	i := int(n) - 1
	if i < 0 || i >= len(b.Norms) {
		return 0
	}
	return b.Norms[i]
}

// maxExternalStatsBlocks bounds the per-identity block cache. Callers are
// expected to reuse one stable statistics identity per deployment (a
// sharded index passes the same wrapper on every query); the bound is a
// backstop so a caller constructing a fresh statistics value per query
// degrades to recomputation instead of unbounded memory growth.
const maxExternalStatsBlocks = 8

// StatsBlock returns the statistics block for this index scored against st
// (pass nil or the index itself for standalone statistics). Blocks are
// computed lazily on first use and cached per st identity for the life of
// the index, so callers must pass the same st value across queries to hit
// the cache; the self block additionally round-trips through the codec so
// loaded indexes serve their first ranked query without the O(index) pass.
func (ix *Index) StatsBlock(st CollectionStats) *StatsBlock {
	self := st == nil
	if !self {
		if six, ok := st.(*Index); ok && six == ix {
			self = true
		}
	}
	ix.statsMu.Lock()
	defer ix.statsMu.Unlock()
	if self {
		if ix.selfBlock == nil {
			ix.selfBlock = ix.computeStatsBlock(ix)
		}
		return ix.selfBlock
	}
	if b, ok := ix.statsBlocks[st]; ok {
		return b
	}
	b := ix.computeStatsBlock(st)
	if ix.statsBlocks == nil {
		ix.statsBlocks = make(map[CollectionStats]*StatsBlock)
	} else if len(ix.statsBlocks) >= maxExternalStatsBlocks {
		ix.statsBlocks = make(map[CollectionStats]*StatsBlock)
	}
	ix.statsBlocks[st] = b
	return b
}

// InvalidateStats drops every cached statistics block. It exists for
// benchmarks and tests that measure the cold, per-query recomputation
// baseline; production code never needs it (the index is immutable).
func (ix *Index) InvalidateStats() {
	ix.statsMu.Lock()
	defer ix.statsMu.Unlock()
	ix.selfBlock = nil
	ix.statsBlocks = nil
}

// SetStatsBlock installs a precomputed block for st (nil: the self block),
// bypassing computation. It is the persistence load path: the codec
// installs the deserialized standalone block, and the sharded container
// installs each shard's global-statistics block keyed by the container's
// shared statistics identity.
func (ix *Index) SetStatsBlock(st CollectionStats, b *StatsBlock) {
	ix.statsMu.Lock()
	defer ix.statsMu.Unlock()
	if st == nil {
		ix.selfBlock = b
		return
	}
	if ix.statsBlocks == nil {
		ix.statsBlocks = make(map[CollectionStats]*StatsBlock)
	}
	ix.statsBlocks[st] = b
}

// computeStatsBlock performs the one-off full pass: node norms first (the
// token iteration order matches the historical score.NodeNormsWith exactly,
// so cached and uncached scores are bit-identical), then the per-token
// maxima over tf/||n||₂ and entry positions.
func (ix *Index) computeStatsBlock(st CollectionStats) *StatsBlock {
	b := &StatsBlock{
		Norms:     make([]float64, len(ix.posCount)),
		MaxTFNorm: make(map[string]float64, len(ix.lists)),
		MaxOcc:    make(map[string]int, len(ix.lists)),
	}
	toks := ix.Tokens()
	sq := make([]float64, len(ix.posCount))
	for _, tok := range toks {
		idf := IDF(st, tok)
		pl := ix.lists[tok]
		for i := range pl.Entries {
			e := &pl.Entries[i]
			u := ix.NodeUniqueTokens(e.Node)
			if u == 0 {
				continue
			}
			tf := float64(len(e.Pos)) / float64(u)
			sq[int(e.Node)-1] += tf * idf * tf * idf
		}
	}
	for i, v := range sq {
		if v > 0 {
			b.Norms[i] = math.Sqrt(v)
		}
	}
	for _, tok := range toks {
		pl := ix.lists[tok]
		var maxTF float64
		var maxOcc int
		for i := range pl.Entries {
			e := &pl.Entries[i]
			if len(e.Pos) > maxOcc {
				maxOcc = len(e.Pos)
			}
			u := ix.NodeUniqueTokens(e.Node)
			nn := b.Norm(e.Node)
			if u == 0 || nn == 0 {
				continue
			}
			if v := float64(len(e.Pos)) / float64(u) / nn; v > maxTF {
				maxTF = v
			}
		}
		b.MaxTFNorm[tok] = maxTF
		b.MaxOcc[tok] = maxOcc
	}
	return b
}

// statsCache is embedded in Index; split out so the zero value documents
// itself and Index stays readable.
type statsCache struct {
	statsMu     sync.Mutex
	selfBlock   *StatsBlock
	statsBlocks map[CollectionStats]*StatsBlock
}
