package invlist

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"fulltext/internal/core"
)

func buildCorpus(t testing.TB, docs ...string) (*core.Corpus, *Index) {
	t.Helper()
	c := core.NewCorpus()
	for i, text := range docs {
		if _, err := c.Add(string(rune('a'+i)), text); err != nil {
			t.Fatal(err)
		}
	}
	return c, Build(c)
}

// TestFigure2InvertedLists reproduces the paper's Figure 2: inverted lists
// keyed by token, each entry a (cn, PosList) pair sorted by node id with
// positions in occurrence order.
func TestFigure2InvertedLists(t *testing.T) {
	c := core.NewCorpus()
	// Node 1 mimics the Figure 1 document: "usability" at ordinals 3, 25, 29
	// and 42 is too fiddly to reproduce verbatim, so we plant tokens at known
	// ordinals with filler words.
	mk := func(places map[int]string, n int) string {
		words := make([]string, n)
		for i := range words {
			words[i] = "filler"
		}
		for ord, tok := range places {
			words[ord-1] = tok
		}
		return strings.Join(words, " ")
	}
	c.MustAdd("one", mk(map[int]string{3: "usability", 25: "usability", 29: "usability", 42: "usability", 1: "software", 12: "software", 39: "software"}, 50))
	c.MustAdd("two", mk(map[int]string{51: "software", 56: "software", 59: "software"}, 60))
	ix := Build(c)

	us := ix.List("usability")
	if us.Len() != 1 || us.Entries[0].Node != 1 {
		t.Fatalf("usability list: %+v", us)
	}
	gotOrds := []int32{}
	for _, p := range us.Entries[0].Pos {
		gotOrds = append(gotOrds, p.Ord)
	}
	want := []int32{3, 25, 29, 42}
	for i := range want {
		if gotOrds[i] != want[i] {
			t.Fatalf("usability positions = %v, want %v", gotOrds, want)
		}
	}

	sw := ix.List("software")
	if sw.Len() != 2 || sw.Entries[0].Node != 1 || sw.Entries[1].Node != 2 {
		t.Fatalf("software list: %+v", sw)
	}
	if got := sw.Entries[1].Pos[0].Ord; got != 51 {
		t.Fatalf("software node-2 first position = %d, want 51", got)
	}
}

func TestBuildAnyList(t *testing.T) {
	_, ix := buildCorpus(t, "a b c", "d e")
	any := ix.Any()
	if any.Len() != 2 {
		t.Fatalf("IL_ANY entries = %d", any.Len())
	}
	if len(any.Entries[0].Pos) != 3 || len(any.Entries[1].Pos) != 2 {
		t.Fatalf("IL_ANY positions wrong: %+v", any.Entries)
	}
	for i, e := range any.Entries {
		if e.Node != core.NodeID(i+1) {
			t.Fatalf("IL_ANY not in node order")
		}
		for j, p := range e.Pos {
			if p.Ord != int32(j+1) {
				t.Fatalf("IL_ANY positions not in order: %v", e.Pos)
			}
		}
	}
}

func TestEmptyNodeInAny(t *testing.T) {
	c := core.NewCorpus()
	c.MustAdd("full", "hello")
	if _, err := c.AddTokens("empty", nil, nil); err != nil {
		t.Fatal(err)
	}
	ix := Build(c)
	if ix.Any().Len() != 2 {
		t.Fatalf("empty node missing from IL_ANY: %d entries", ix.Any().Len())
	}
	if len(ix.Any().Entries[1].Pos) != 0 {
		t.Fatalf("empty node has positions")
	}
}

func TestStats(t *testing.T) {
	_, ix := buildCorpus(t,
		"x x x y",   // node 1: x appears 3 times
		"x z",       // node 2
		"w w w w w") // node 3: 5 positions
	st := ix.Stats()
	if st.CNodes != 3 {
		t.Errorf("CNodes = %d", st.CNodes)
	}
	if st.PosPerCNode != 5 {
		t.Errorf("PosPerCNode = %d, want 5", st.PosPerCNode)
	}
	if st.EntriesPerToken != 2 { // "x" occurs in two nodes
		t.Errorf("EntriesPerToken = %d, want 2", st.EntriesPerToken)
	}
	if st.PosPerEntry != 5 { // "w" has 5 positions in node 3
		t.Errorf("PosPerEntry = %d, want 5", st.PosPerEntry)
	}
	if st.TotalPositions != 11 {
		t.Errorf("TotalPositions = %d, want 11", st.TotalPositions)
	}
	if st.Tokens != 4 {
		t.Errorf("Tokens = %d, want 4", st.Tokens)
	}
}

func TestDFAndNodeMeta(t *testing.T) {
	_, ix := buildCorpus(t, "a b a", "a c")
	if ix.DF("a") != 2 || ix.DF("b") != 1 || ix.DF("zzz") != 0 {
		t.Errorf("DF wrong: a=%d b=%d zzz=%d", ix.DF("a"), ix.DF("b"), ix.DF("zzz"))
	}
	if ix.NodePositions(1) != 3 || ix.NodePositions(2) != 2 || ix.NodePositions(99) != 0 {
		t.Errorf("NodePositions wrong")
	}
	if ix.NodeUniqueTokens(1) != 2 || ix.NodeUniqueTokens(2) != 2 {
		t.Errorf("NodeUniqueTokens wrong")
	}
	if !ix.Has("a") || ix.Has("zzz") {
		t.Errorf("Has wrong")
	}
	if ix.NumNodes() != 2 {
		t.Errorf("NumNodes = %d", ix.NumNodes())
	}
}

func TestCursorSequentialScan(t *testing.T) {
	_, ix := buildCorpus(t, "a b", "a", "c a")
	cur := ix.List("a").Cursor()
	var nodes []core.NodeID
	for {
		n, ok := cur.NextEntry()
		if !ok {
			break
		}
		nodes = append(nodes, n)
		if len(cur.Positions()) == 0 {
			t.Fatalf("entry for node %d has no positions", n)
		}
	}
	if len(nodes) != 3 || nodes[0] != 1 || nodes[1] != 2 || nodes[2] != 3 {
		t.Fatalf("cursor nodes = %v", nodes)
	}
	if !cur.Done() {
		t.Fatalf("cursor should be done")
	}
	if _, ok := cur.NextEntry(); ok {
		t.Fatalf("NextEntry after exhaustion must fail")
	}
	if cur.Positions() != nil || cur.Node() != 0 {
		t.Fatalf("exhausted cursor must return nil positions and node 0")
	}
	if cur.EntrySteps != 3 {
		t.Fatalf("EntrySteps = %d, want 3", cur.EntrySteps)
	}
}

func TestCursorBeforeFirst(t *testing.T) {
	_, ix := buildCorpus(t, "a")
	cur := ix.List("a").Cursor()
	if cur.Node() != 0 || cur.Positions() != nil {
		t.Fatalf("unpositioned cursor must return zero values")
	}
	if cur.Done() {
		t.Fatalf("fresh cursor is not done")
	}
}

func TestMissingTokenList(t *testing.T) {
	_, ix := buildCorpus(t, "a")
	pl := ix.List("missing")
	if pl == nil || pl.Len() != 0 {
		t.Fatalf("missing token must yield empty list")
	}
	cur := pl.Cursor()
	if _, ok := cur.NextEntry(); ok {
		t.Fatalf("empty list cursor must be exhausted immediately")
	}
}

func TestFind(t *testing.T) {
	_, ix := buildCorpus(t, "a", "b", "a")
	pl := ix.List("a")
	if e := pl.Find(1); e == nil || e.Node != 1 {
		t.Errorf("Find(1) = %v", e)
	}
	if e := pl.Find(3); e == nil || e.Node != 3 {
		t.Errorf("Find(3) = %v", e)
	}
	if e := pl.Find(2); e != nil {
		t.Errorf("Find(2) should be nil, got %v", e)
	}
	var nilList *PostingList
	if nilList.Find(1) != nil || nilList.Len() != 0 || nilList.TotalPositions() != 0 || nilList.MaxPositions() != 0 {
		t.Errorf("nil list methods must be safe")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	c := core.NewCorpus()
	c.MustAdd("one", "Usability of a software measures. How well the software supports!\n\nA new paragraph about usability testing.")
	c.MustAdd("two", "task completion requires an efficient process for task completion")
	c.MustAdd("empty-ish", ".")
	ix := Build(c)

	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if got.Stats() != ix.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", got.Stats(), ix.Stats())
	}
	for _, tok := range ix.Tokens() {
		a, b := ix.List(tok), got.List(tok)
		if a.Len() != b.Len() {
			t.Fatalf("token %q entry counts differ", tok)
		}
		for i := range a.Entries {
			ea, eb := a.Entries[i], b.Entries[i]
			if ea.Node != eb.Node || len(ea.Pos) != len(eb.Pos) {
				t.Fatalf("token %q entry %d differs", tok, i)
			}
			for j := range ea.Pos {
				if ea.Pos[j] != eb.Pos[j] {
					t.Fatalf("token %q pos %d differs: %v vs %v", tok, j, ea.Pos[j], eb.Pos[j])
				}
			}
		}
	}
	// IL_ANY is rebuilt on load and must match.
	if got.Any().Len() != ix.Any().Len() {
		t.Fatalf("IL_ANY lengths differ")
	}
	for i := range ix.any.Entries {
		ea, eb := ix.any.Entries[i], got.any.Entries[i]
		if ea.Node != eb.Node || len(ea.Pos) != len(eb.Pos) {
			t.Fatalf("IL_ANY entry %d differs", i)
		}
		for j := range ea.Pos {
			if ea.Pos[j] != eb.Pos[j] {
				t.Fatalf("IL_ANY pos differs at %d/%d", i, j)
			}
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(texts []string) bool {
		c := core.NewCorpus()
		for i, tx := range texts {
			if i >= 6 {
				break
			}
			if _, err := c.Add(strings.Repeat("d", i+1), tx); err != nil {
				return false
			}
		}
		ix := Build(c)
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadFrom(&buf)
		if err != nil {
			return false
		}
		return got.Stats() == ix.Stats()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecCorruption(t *testing.T) {
	_, ix := buildCorpus(t, "hello world hello")
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, full...)
	bad[0] = 'X'
	if _, err := ReadFrom(bytes.NewReader(bad)); err == nil {
		t.Errorf("bad magic accepted")
	}
	// Truncations at every prefix length must error, never panic.
	for n := 0; n < len(full)-1; n++ {
		if _, err := ReadFrom(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("truncated stream of %d bytes accepted", n)
		}
	}
	// Bad version.
	bad = append([]byte{}, full...)
	bad[4] = 99
	if _, err := ReadFrom(bytes.NewReader(bad)); err == nil {
		t.Errorf("bad version accepted")
	}
}

func TestCodecEmptyIndex(t *testing.T) {
	c := core.NewCorpus()
	ix := Build(c)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 0 || len(got.Tokens()) != 0 {
		t.Fatalf("empty index round trip wrong")
	}
}
