package invlist

import (
	"bytes"
	"testing"

	"fulltext/internal/core"
)

// metasFor hand-builds the First/Last part of a block directory for a list.
// SeekBlock only consults First/Last, so the score bounds stay zero.
func metasFor(pl *PostingList, size int) []BlockMeta {
	var metas []BlockMeta
	for lo := 0; lo < len(pl.Entries); lo += size {
		hi := lo + size
		if hi > len(pl.Entries) {
			hi = len(pl.Entries)
		}
		metas = append(metas, BlockMeta{First: pl.Entries[lo].Node, Last: pl.Entries[hi-1].Node})
	}
	return metas
}

// TestSeekBlockOracle checks SeekBlock against the same scan oracle as
// TestCursorSeek, for block sizes that cut the list at every boundary
// pattern: every landing position and return value must match plain Seek,
// from a fresh cursor and from every possible starting entry.
func TestSeekBlockOracle(t *testing.T) {
	pl := &PostingList{Token: "t"}
	nodes := []core.NodeID{2, 3, 5, 8, 13, 21, 34, 55, 89, 144}
	for _, n := range nodes {
		pl.Entries = append(pl.Entries, Entry{Node: n, Pos: []core.Pos{{Ord: int32(n)}}})
	}
	for _, size := range []int{1, 2, 3, 4, 7, 1 << 20} {
		metas := metasFor(pl, size)
		for start := -1; start < len(nodes); start++ {
			for target := core.NodeID(0); target <= 150; target++ {
				ref := pl.Cursor()
				got := pl.Cursor()
				if start >= 0 {
					ref.Seek(nodes[start])
					got.Seek(nodes[start])
				}
				wantNode, wantOK := ref.Seek(target)
				gotNode, gotOK := got.SeekBlock(metas, size, target)
				if gotOK != wantOK || gotNode != wantNode || got.EntryIndex() != ref.EntryIndex() {
					t.Fatalf("size=%d start=%d: SeekBlock(%d) = (%d,%v) at %d, Seek = (%d,%v) at %d",
						size, start, target, gotNode, gotOK, got.EntryIndex(), wantNode, wantOK, ref.EntryIndex())
				}
			}
		}
	}
}

// TestSeekBlockSkipCounting pins BlockSkips semantics: jumping straight
// from block 0 to block k through the directory counts k boundary
// crossings, seeks inside the current block count none, and the empty or
// disabled directory degrades to plain Seek without counting.
func TestSeekBlockSkipCounting(t *testing.T) {
	pl := &PostingList{Token: "t"}
	for i := 1; i <= 100; i++ {
		pl.Entries = append(pl.Entries, Entry{Node: core.NodeID(2 * i), Pos: []core.Pos{{Ord: int32(i)}}})
	}
	metas := metasFor(pl, 10)

	cur := pl.Cursor()
	cur.NextEntry() // position on entry 0 (node 2), block 0
	if n, ok := cur.SeekBlock(metas, 10, 190); !ok || n != 190 {
		t.Fatalf("SeekBlock(190) = (%d,%v), want (190,true)", n, ok)
	}
	// Node 190 is entry 94, block 9: nine boundaries crossed from block 0.
	if cur.BlockSkips != 9 {
		t.Fatalf("BlockSkips = %d after a block-0 to block-9 jump, want 9", cur.BlockSkips)
	}
	if n, ok := cur.SeekBlock(metas, 10, 196); !ok || n != 196 {
		t.Fatalf("SeekBlock(196) = (%d,%v), want (196,true)", n, ok)
	}
	if cur.BlockSkips != 9 {
		t.Fatalf("BlockSkips = %d after an in-block seek, want still 9", cur.BlockSkips)
	}
	// Past the last block: exhausted, and the directory answers it without
	// touching more entries.
	if _, ok := cur.SeekBlock(metas, 10, 1000); ok || !cur.Done() {
		t.Fatal("SeekBlock past the end must exhaust the cursor")
	}
	if _, ok := cur.SeekBlock(metas, 10, 2); ok {
		t.Fatal("SeekBlock on an exhausted cursor must fail")
	}

	// No directory: plain Seek, no skip accounting.
	plain := pl.Cursor()
	if n, ok := plain.SeekBlock(nil, 10, 190); !ok || n != 190 {
		t.Fatalf("directory-less SeekBlock(190) = (%d,%v), want (190,true)", n, ok)
	}
	if plain.BlockSkips != 0 {
		t.Fatalf("directory-less SeekBlock counted %d skips, want 0", plain.BlockSkips)
	}
	disabled := pl.Cursor()
	if n, ok := disabled.SeekBlock(metas, 0, 190); !ok || n != 190 || disabled.BlockSkips != 0 {
		t.Fatalf("size<=0 SeekBlock = (%d,%v) with %d skips, want (190,true) and 0", n, ok, disabled.BlockSkips)
	}

	// Empty list.
	empty := (&PostingList{}).Cursor()
	if _, ok := empty.SeekBlock(metas, 10, 1); ok {
		t.Fatal("SeekBlock on empty list must fail")
	}
}

// TestBlockDirectoryShape checks the computed directory against the lists:
// ceil(len/size) blocks per token, First/Last on the actual entry ids, and
// the global per-token bounds exactly equal to the maxima over the blocks.
func TestBlockDirectoryShape(t *testing.T) {
	for _, size := range []int{1, 2, 3, 1 << 20} {
		ix := buildStatsIndex(t)
		ix.SetBlockSize(size)
		b := ix.StatsBlock(nil)
		if b.BlockSize != size {
			t.Fatalf("BlockSize = %d, want %d", b.BlockSize, size)
		}
		for _, tok := range ix.Tokens() {
			pl := ix.List(tok)
			metas := b.Blocks[tok]
			wantBlocks := (pl.Len() + size - 1) / size
			if len(metas) != wantBlocks {
				t.Fatalf("size=%d %s: %d blocks, want %d", size, tok, len(metas), wantBlocks)
			}
			var gOcc int32
			var gTF float64
			for k, m := range metas {
				lo, hi := k*size, k*size+size
				if hi > pl.Len() {
					hi = pl.Len()
				}
				if m.First != pl.Entries[lo].Node || m.Last != pl.Entries[hi-1].Node {
					t.Fatalf("size=%d %s block %d: range [%d,%d], want [%d,%d]",
						size, tok, k, m.First, m.Last, pl.Entries[lo].Node, pl.Entries[hi-1].Node)
				}
				var occ int32
				for i := lo; i < hi; i++ {
					if int32(len(pl.Entries[i].Pos)) > occ {
						occ = int32(len(pl.Entries[i].Pos))
					}
				}
				if m.MaxOcc != occ {
					t.Fatalf("size=%d %s block %d: MaxOcc %d, want %d", size, tok, k, m.MaxOcc, occ)
				}
				if m.MaxOcc > gOcc {
					gOcc = m.MaxOcc
				}
				if m.MaxTFNorm > gTF {
					gTF = m.MaxTFNorm
				}
			}
			if int(gOcc) != b.MaxOcc[tok] || gTF != b.MaxTFNorm[tok] {
				t.Fatalf("size=%d %s: block maxima (%g,%d) disagree with global bounds (%g,%d)",
					size, tok, gTF, gOcc, b.MaxTFNorm[tok], b.MaxOcc[tok])
			}
		}
	}
}

// TestCodecBlockSectionRoundTrip checks version-3 serialization freezes the
// block directory bit-identically, including a non-default block size, and
// that the loaded index serves it without a statistics rebuild.
func TestCodecBlockSectionRoundTrip(t *testing.T) {
	ix := buildStatsIndex(t)
	ix.SetBlockSize(2)
	want := ix.StatsBlock(nil)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.StatsBlock(nil)
	if loaded.StatsBlockBuilds() != 0 {
		t.Fatalf("loading a v3 stream cost %d statistics builds, want 0", loaded.StatsBlockBuilds())
	}
	if got.BlockSize != want.BlockSize {
		t.Fatalf("BlockSize = %d, want %d", got.BlockSize, want.BlockSize)
	}
	if len(got.Blocks) != len(want.Blocks) {
		t.Fatalf("%d block directories, want %d", len(got.Blocks), len(want.Blocks))
	}
	for tok, wantMetas := range want.Blocks {
		gotMetas := got.Blocks[tok]
		if len(gotMetas) != len(wantMetas) {
			t.Fatalf("%s: %d blocks, want %d", tok, len(gotMetas), len(wantMetas))
		}
		for k := range wantMetas {
			if gotMetas[k] != wantMetas[k] {
				t.Fatalf("%s block %d: %+v, want %+v (must be bit-identical)", tok, k, gotMetas[k], wantMetas[k])
			}
		}
	}
}

// TestLegacyV2StreamSynthesizesBlocks loads a version-2 stream (stats block
// but no block section) and requires StatsBlock to lazily synthesize a
// directory identical to a freshly computed one.
func TestLegacyV2StreamSynthesizesBlocks(t *testing.T) {
	ix := buildStatsIndex(t)
	var buf bytes.Buffer
	if _, err := ix.writeToVersion(&buf, WriteOptions{}, 2); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.StatsBlock(nil)
	want := ix.StatsBlock(nil)
	if got.BlockSize != want.BlockSize {
		t.Fatalf("synthesized BlockSize = %d, want %d", got.BlockSize, want.BlockSize)
	}
	if got.Blocks == nil {
		t.Fatal("v2-loaded statistics block did not synthesize its block directory")
	}
	for tok, wantMetas := range want.Blocks {
		gotMetas := got.Blocks[tok]
		if len(gotMetas) != len(wantMetas) {
			t.Fatalf("%s: %d synthesized blocks, want %d", tok, len(gotMetas), len(wantMetas))
		}
		for k := range wantMetas {
			if gotMetas[k] != wantMetas[k] {
				t.Fatalf("%s block %d: synthesized %+v, want %+v", tok, k, gotMetas[k], wantMetas[k])
			}
		}
	}
}

// TestFutureVersionRejected checks that readers refuse streams from codec
// versions they do not understand instead of misparsing them.
func TestFutureVersionRejected(t *testing.T) {
	ix := buildStatsIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The version uvarint sits right after the 4-byte magic; the current
	// version fits one byte, so bumping it in place forges a future stream.
	if raw[len(codecMagic)] != codecVersion {
		t.Fatalf("stream version byte = %d, want %d", raw[len(codecMagic)], codecVersion)
	}
	raw[len(codecMagic)] = codecVersion + 1
	if _, err := ReadFrom(bytes.NewReader(raw)); err == nil {
		t.Fatal("ReadFrom accepted a stream from a future codec version")
	}
}
