package invlist

import (
	"sort"

	"fulltext/internal/core"
)

// MergePart is one input of Merge: an index plus an optional liveness mask
// (indexed by NodeID-1; nil means every node is live). Dead nodes — the
// tombstones of an incremental segment — are dropped from the merged index.
type MergePart struct {
	Index *Index
	Live  []bool
}

// alive reports whether the part's local node id n is live.
func (p MergePart) alive(n core.NodeID) bool {
	i := int(n) - 1
	return p.Live == nil || (i >= 0 && i < len(p.Live) && p.Live[i])
}

// Merge concatenates the live nodes of the given parts, in part order, into
// one new index with dense NodeIDs starting at 1. It is the physical
// segment-merge operation of the incremental ingestion subsystem: posting
// lists are merged token by token (entries keep their position slices, which
// are immutable and safely shared with the inputs), per-node metadata is
// copied, and IL_ANY is rebuilt. The returned remap gives, per part, the new
// NodeID of each old local node (0 for dead nodes).
//
// Because new ids are assigned in part order and entries within every input
// list are already ascending, the merged lists are ascending by construction
// — no per-list sort is needed.
func Merge(parts []MergePart) (*Index, [][]core.NodeID) {
	remap := make([][]core.NodeID, len(parts))
	total := 0
	for pi, p := range parts {
		n := p.Index.NumNodes()
		remap[pi] = make([]core.NodeID, n)
		for i := 0; i < n; i++ {
			if p.alive(core.NodeID(i + 1)) {
				total++
				remap[pi][i] = core.NodeID(total)
			}
		}
	}

	out := &Index{
		lists:       make(map[string]*PostingList),
		any:         &PostingList{},
		posCount:    make([]int32, total),
		uniqueCount: make([]int32, total),
	}
	vocab := make(map[string]bool)
	for _, p := range parts {
		for t := range p.Index.lists {
			vocab[t] = true
		}
	}
	toks := make([]string, 0, len(vocab))
	for t := range vocab {
		toks = append(toks, t)
	}
	sort.Strings(toks)
	for _, tok := range toks {
		var entries []Entry
		for pi, p := range parts {
			pl := p.Index.lists[tok]
			if pl == nil {
				continue
			}
			for _, e := range pl.Entries {
				if nn := remap[pi][int(e.Node)-1]; nn != 0 {
					entries = append(entries, Entry{Node: nn, Pos: e.Pos})
				}
			}
		}
		if len(entries) > 0 {
			out.lists[tok] = &PostingList{Token: tok, Entries: entries}
		}
	}
	for pi, p := range parts {
		for i, nn := range remap[pi] {
			if nn == 0 {
				continue
			}
			out.posCount[int(nn)-1] = p.Index.posCount[i]
			out.uniqueCount[int(nn)-1] = p.Index.uniqueCount[i]
		}
	}
	out.rebuildAny()
	out.recomputeStats()
	return out, remap
}
