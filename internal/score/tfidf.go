package score

import (
	"math"

	"fulltext/internal/core"
	"fulltext/internal/invlist"
)

// TFIDF is the Section 3.1 scoring model. Each R_token tuple starts with
// the per-position score
//
//	idf(t)² / (unique_tokens(n) · unique_search_tokens · ||n||₂ · ||q||₂)
//
// (the precomputed idf(t)/(unique_tokens·||n||₂) factor times the
// query-dependent w(t)/(unique_search_tokens·||q||₂) factor with
// w(t) = idf(t)), so that summing a token's tuple scores over a node yields
// exactly the node's cosine contribution w(t)·tf(n,t)·idf(t)/(||n||₂·||q||₂)
// for that token — equations (1)–(3) of the Theorem 2 proof.
//
// Operator transformations follow Section 3.1's score conservation: joins
// scale by the partner relation's per-node cardinality, projections sum,
// unions add, intersections take the minimum, selections and differences
// pass scores through.
type TFIDF struct {
	ix           *invlist.Index
	st           CorpusStats
	idf          map[string]float64
	block        *invlist.StatsBlock
	uniqueSearch int
	qnorm        float64
}

// NewTFIDF builds the model for one query's search tokens. It precomputes
// idf per search token and ||q||2; ||n||2 per node comes from the index's
// cached statistics block.
func NewTFIDF(ix *invlist.Index, searchTokens []string) *TFIDF {
	return NewTFIDFWith(ix, ix, searchTokens)
}

// NewTFIDFWith builds the model scoring the nodes of ix against the
// collection statistics st. Passing ix as st gives the single-index model;
// a sharded index passes its global statistics so every shard produces the
// same scores the union index would. Construction is O(query tokens): the
// node norms and per-list upper bounds live in the index's statistics
// block, computed once per (index, st) and shared across queries.
func NewTFIDFWith(ix *invlist.Index, st CorpusStats, searchTokens []string) *TFIDF {
	m := &TFIDF{
		ix:    ix,
		st:    st,
		idf:   make(map[string]float64, len(searchTokens)),
		block: ix.StatsBlock(st),
	}
	seen := make(map[string]bool)
	var qsq float64
	for _, t := range searchTokens {
		if seen[t] {
			continue
		}
		seen[t] = true
		idf := IDF(st, t)
		m.idf[t] = idf
		// The query-side vector uses weight w(t) = idf(t).
		qsq += idf * idf
	}
	m.uniqueSearch = len(seen)
	if qsq > 0 {
		m.qnorm = math.Sqrt(qsq)
	}
	return m
}

// LeafToken implements fta.Scorer.
func (m *TFIDF) LeafToken(tok string, node core.NodeID) float64 {
	idf, ok := m.idf[tok]
	if !ok {
		idf = IDF(m.st, tok)
		m.idf[tok] = idf
	}
	u := float64(m.ix.NodeUniqueTokens(node))
	nn := m.block.Norm(node)
	if u == 0 || nn == 0 || m.qnorm == 0 || m.uniqueSearch == 0 {
		return 0
	}
	return idf * idf / (u * float64(m.uniqueSearch) * nn * m.qnorm)
}

// UpperBound returns a per-query-leaf score upper bound for tok: no node's
// summed R_tok tuple scores (one leaf occurrence of tok in the query) can
// exceed it. A node's leaf contribution is tf(n,t)·idf(t)·idf(t) /
// (unique_search·||n||₂·||q||₂) and the statistics block caches
// max over IL_tok entries of tf/||n||₂, so the bound is exact up to
// floating-point reassociation — callers must compare with a relative
// slack (the WAND evaluator does).
func (m *TFIDF) UpperBound(tok string) float64 {
	if m.qnorm == 0 || m.uniqueSearch == 0 {
		return 0
	}
	idf, ok := m.idf[tok]
	if !ok {
		idf = IDF(m.st, tok)
	}
	return m.block.MaxTFNorm[tok] * idf * idf / (float64(m.uniqueSearch) * m.qnorm)
}

// LeafHasPos implements fta.Scorer; positions reached through IL_ANY carry
// no term weight.
func (m *TFIDF) LeafHasPos(core.NodeID) float64 { return 0 }

// LeafContext implements fta.Scorer.
func (m *TFIDF) LeafContext(core.NodeID) float64 { return 0 }

// Join implements the conservation rule t3 = t1/|R2| + t2/|R1| with
// per-node cardinalities.
func (m *TFIDF) Join(s1, s2 float64, n1, n2 int) float64 {
	var out float64
	if n2 > 0 {
		out += s1 / float64(n2)
	}
	if n1 > 0 {
		out += s2 / float64(n1)
	}
	return out
}

// Project sums the scores of collapsing tuples (score conservation).
func (m *TFIDF) Project(parts []float64) float64 {
	var s float64
	for _, p := range parts {
		s += p
	}
	return s
}

// Select passes scores through (Section 3.1's σ rule).
func (m *TFIDF) Select(s float64, _ string, _ []core.Pos, _ []int) float64 { return s }

// Union adds, treating missing tuples as score 0.
func (m *TFIDF) Union(sL, sR float64, haveL, haveR bool) float64 {
	var s float64
	if haveL {
		s += sL
	}
	if haveR {
		s += sR
	}
	return s
}

// Intersect takes the minimum.
func (m *TFIDF) Intersect(sL, sR float64) float64 {
	if sL < sR {
		return sL
	}
	return sR
}

// Diff passes the surviving tuple's score through.
func (m *TFIDF) Diff(s float64) float64 { return s }

// Cosine computes the classic cosine TF-IDF score of node for the model's
// search tokens directly from the index — the ground truth for Theorem 2.
func (m *TFIDF) Cosine(node core.NodeID, searchTokens []string) float64 {
	nn := m.block.Norm(node)
	if nn == 0 || m.qnorm == 0 {
		return 0
	}
	seen := make(map[string]bool)
	var s float64
	for _, t := range searchTokens {
		if seen[t] {
			continue
		}
		seen[t] = true
		idf := IDF(m.st, t)
		w := idf / float64(m.uniqueSearch)
		s += w * TF(m.ix, node, t) * idf
	}
	return s / (nn * m.qnorm)
}
