package score

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"fulltext/internal/compeval"
	"fulltext/internal/core"
	"fulltext/internal/fta"
	"fulltext/internal/invlist"
	"fulltext/internal/lang"
	"fulltext/internal/pred"
)

func corpusIx(t testing.TB, docs ...string) (*core.Corpus, *invlist.Index) {
	t.Helper()
	c := core.NewCorpus()
	for i, text := range docs {
		if _, err := c.Add(fmt.Sprintf("d%d", i+1), text); err != nil {
			t.Fatal(err)
		}
	}
	return c, invlist.Build(c)
}

func TestIDFAndTF(t *testing.T) {
	_, ix := corpusIx(t, "aa bb aa", "aa cc", "dd")
	// df(aa)=2, db=3: idf = ln(1 + 3/2)
	if got, want := IDF(ix, "aa"), math.Log(1+1.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("IDF(aa) = %v, want %v", got, want)
	}
	if IDF(ix, "zz") != 0 {
		t.Errorf("IDF of missing token should be 0")
	}
	// node 1: occurs(aa)=2, unique=2 -> tf = 1.0
	if got := TF(ix, 1, "aa"); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("TF(1,aa) = %v, want 1", got)
	}
	if TF(ix, 3, "aa") != 0 {
		t.Errorf("TF of absent token should be 0")
	}
}

func TestNodeNorms(t *testing.T) {
	_, ix := corpusIx(t, "aa bb")
	norms := NodeNorms(ix)
	idfA, idfB := IDF(ix, "aa"), IDF(ix, "bb")
	// node 1: tf = 1/2 each.
	want := math.Sqrt(0.25*idfA*idfA + 0.25*idfB*idfB)
	if math.Abs(norms[1]-want) > 1e-12 {
		t.Errorf("norm = %v, want %v", norms[1], want)
	}
}

// TestTheorem2Conjunctive: propagated TF-IDF scores through the algebra
// equal the directly computed cosine TF-IDF for conjunctive queries.
func TestTheorem2Conjunctive(t *testing.T) {
	_, ix := corpusIx(t,
		"usability test of the software usability",
		"software quality assurance test software test",
		"usability software",
		"unrelated words here",
	)
	reg := pred.Default()
	for _, qs := range []string{
		`'usability' AND 'software'`,
		`'usability' AND 'test'`,
		`'software' AND 'test' AND 'usability'`,
	} {
		q, err := lang.Parse(lang.DialectBOOL, qs)
		if err != nil {
			t.Fatal(err)
		}
		toks := TokensOf(q)
		model := NewTFIDF(ix, toks)
		res, err := compeval.EvalScored(q, ix, reg, compeval.Options{Scorer: model})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range res.Nodes {
			want := model.Cosine(n, toks)
			got := res.Scores[n]
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("%s node %d: propagated %v, direct cosine %v", qs, n, got, want)
			}
		}
	}
}

// TestTheorem2Disjunctive: same for disjunctive queries, where the
// propagated score must equal the sum of per-token cosine contributions of
// the tokens present in the node.
func TestTheorem2Disjunctive(t *testing.T) {
	_, ix := corpusIx(t,
		"usability test of the software usability",
		"software quality assurance test software test",
		"usability software",
		"unrelated words here",
	)
	reg := pred.Default()
	qs := `'usability' OR 'software' OR 'test'`
	q, err := lang.Parse(lang.DialectBOOL, qs)
	if err != nil {
		t.Fatal(err)
	}
	toks := TokensOf(q)
	model := NewTFIDF(ix, toks)
	res, err := compeval.EvalScored(q, ix, reg, compeval.Options{Scorer: model})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Nodes {
		want := model.Cosine(n, toks)
		got := res.Scores[n]
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s node %d: propagated %v, direct cosine %v", qs, n, got, want)
		}
	}
}

// TestTheorem2MixedShape: the same conjunctive query scored through two
// different plan shapes (projected leaves joined at width 0 vs a positional
// join projected at the top) conserves the total score.
func TestTheorem2MixedShape(t *testing.T) {
	_, ix := corpusIx(t,
		"usability test of the software usability",
		"software usability software",
	)
	reg := pred.Default()
	toks := []string{"usability", "software"}
	model := NewTFIDF(ix, toks)

	shapeA := fta.Join{
		L: fta.Project{In: fta.Token{Tok: "usability"}, Cols: nil},
		R: fta.Project{In: fta.Token{Tok: "software"}, Cols: nil},
	}
	shapeB := fta.Project{In: fta.Join{L: fta.Token{Tok: "usability"}, R: fta.Token{Tok: "software"}}, Cols: nil}

	evA := &fta.Evaluator{Index: ix, Reg: reg, Scorer: model}
	ra, err := evA.Eval(shapeA)
	if err != nil {
		t.Fatal(err)
	}
	evB := &fta.Evaluator{Index: ix, Reg: reg, Scorer: model}
	rb, err := evB.Eval(shapeB)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range ra.Nodes {
		if math.Abs(ra.Scores[n]-rb.Scores[n]) > 1e-9 {
			t.Errorf("node %d: plan shapes disagree: %v vs %v", n, ra.Scores[n], rb.Scores[n])
		}
	}
}

func TestTFIDFRankingOrder(t *testing.T) {
	_, ix := corpusIx(t,
		"usability usability usability",       // high tf for usability
		"usability and many other words here", // low tf
		"nothing relevant",
	)
	reg := pred.Default()
	q, _ := lang.Parse(lang.DialectBOOL, `'usability'`)
	model := NewTFIDF(ix, TokensOf(q))
	res, err := compeval.EvalScored(q, ix, reg, compeval.Options{Scorer: model})
	if err != nil {
		t.Fatal(err)
	}
	ranked := Rank(res)
	if len(ranked) != 2 {
		t.Fatalf("ranked = %v", ranked)
	}
	if ranked[0].Node != 1 || ranked[1].Node != 2 {
		t.Errorf("ranking order wrong: %v", ranked)
	}
	if ranked[0].Score <= ranked[1].Score {
		t.Errorf("scores not descending: %v", ranked)
	}
}

// TestPRAInRange: PRA scores stay in [0,1] through arbitrary operator
// combinations.
func TestPRAInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	vocab := []string{"aa", "bb", "cc"}
	reg := pred.Default()
	c := core.NewCorpus()
	for i := 0; i < 8; i++ {
		n := rng.Intn(10)
		words := make([]string, n)
		for j := range words {
			words[j] = vocab[rng.Intn(len(vocab))]
		}
		c.MustAdd(fmt.Sprintf("doc%d", i), strings.Join(words, " "))
	}
	ix := invlist.Build(c)
	model := NewPRA(ix)

	queries := []string{
		`'aa'`,
		`'aa' AND 'bb'`,
		`'aa' OR 'bb' OR 'cc'`,
		`'aa' AND NOT 'bb'`,
		`NOT 'aa'`,
		`SOME p1 SOME p2 (p1 HAS 'aa' AND p2 HAS 'bb' AND distance(p1,p2,3))`,
		`SOME p1 SOME p2 (p1 HAS 'aa' AND p2 HAS 'bb' AND NOT distance(p1,p2,1))`,
		`EVERY p (p HAS 'aa')`,
	}
	for _, qs := range queries {
		q, err := lang.Parse(lang.DialectCOMP, qs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := compeval.EvalScored(q, ix, reg, compeval.Options{Scorer: model})
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		for n, s := range res.Scores {
			if s < 0 || s > 1 || math.IsNaN(s) {
				t.Errorf("%s: node %d score %v out of [0,1]", qs, n, s)
			}
		}
	}
}

func TestPRADistanceDecay(t *testing.T) {
	_, ix := corpusIx(t,
		"aa bb filler filler filler", // adjacent: strong
		"aa filler filler bb filler", // gap 3: weaker
	)
	reg := pred.Default()
	q, _ := lang.Parse(lang.DialectCOMP,
		`SOME p1 SOME p2 (p1 HAS 'aa' AND p2 HAS 'bb' AND distance(p1,p2,4))`)
	model := NewPRA(ix)
	res, err := compeval.EvalScored(q, ix, reg, compeval.Options{Scorer: model})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 2 {
		t.Fatalf("nodes = %v", res.Nodes)
	}
	if res.Scores[1] <= res.Scores[2] {
		t.Errorf("distance decay missing: adjacent %v vs far %v", res.Scores[1], res.Scores[2])
	}
}

func TestPRALeafAndCombinators(t *testing.T) {
	_, ix := corpusIx(t, "aa", "bb")
	m := NewPRA(ix)
	if s := m.LeafToken("aa", 1); s <= 0 || s > 1 {
		t.Errorf("leaf score %v out of range", s)
	}
	if m.LeafHasPos(1) != 1 || m.LeafContext(1) != 1 {
		t.Errorf("hasPos/context leaves should be certain")
	}
	if got := m.Join(0.5, 0.5, 1, 1); got != 0.25 {
		t.Errorf("Join = %v", got)
	}
	if got := m.Project([]float64{0.5, 0.5}); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Project = %v", got)
	}
	if got := m.Union(0.5, 0.5, true, true); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Union = %v", got)
	}
	if got := m.Union(0.5, 0, true, false); got != 0.5 {
		t.Errorf("Union missing side = %v", got)
	}
	if got := m.Intersect(0.5, 0.4); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Intersect = %v", got)
	}
	if got := m.Negate(0.3); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("Negate = %v", got)
	}
	if got := m.Diff(0.3); got != 0.3 {
		t.Errorf("Diff = %v", got)
	}
}

func TestTokensOf(t *testing.T) {
	q, _ := lang.Parse(lang.DialectCOMP,
		`SOME p ((p HAS 'aa' OR p HAS 'bb') AND 'aa') AND NOT 'cc'`)
	toks := TokensOf(q)
	want := []string{"aa", "bb", "cc"}
	if len(toks) != len(want) {
		t.Fatalf("TokensOf = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("TokensOf = %v, want %v", toks, want)
		}
	}
}

func TestTFIDFZeroGuards(t *testing.T) {
	c := core.NewCorpus()
	if _, err := c.AddTokens("empty", nil, nil); err != nil {
		t.Fatal(err)
	}
	ix := invlist.Build(c)
	m := NewTFIDF(ix, []string{"zz"})
	if s := m.LeafToken("zz", 1); s != 0 {
		t.Errorf("leaf on empty corpus = %v", s)
	}
	if s := m.Cosine(1, []string{"zz"}); s != 0 {
		t.Errorf("cosine on empty corpus = %v", s)
	}
	if m.Join(1, 1, 0, 0) != 0 {
		t.Errorf("join with zero cardinalities should be 0")
	}
}
