// Package score implements the scoring framework of Section 3: per-tuple
// scoring information initialized at the R_token leaves plus a scoring
// transformation per algebra operator (the fta.Scorer interface). Two
// models are provided:
//
//   - TFIDF (Section 3.1): the classic cosine TF-IDF measure, propagated so
//     that conjunctive and disjunctive queries reproduce the traditional
//     score exactly (Theorem 2);
//   - PRA (Section 3.2): the probabilistic relational algebra of Fuhr and
//     Rölleke, where every tuple carries a probability in [0, 1].
package score

import (
	"sort"

	"fulltext/internal/core"
	"fulltext/internal/fta"
	"fulltext/internal/invlist"
	"fulltext/internal/lang"
)

// TokensOf extracts the search tokens of a query in first-occurrence order
// (the bag q of Section 3.1's cosine formula, deduplicated).
func TokensOf(q lang.Query) []string {
	var out []string
	seen := make(map[string]bool)
	var rec func(q lang.Query)
	add := func(t string) {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	rec = func(q lang.Query) {
		switch x := q.(type) {
		case lang.Lit:
			add(x.Tok)
		case lang.Has:
			add(x.Tok)
		case lang.Not:
			rec(x.Q)
		case lang.And:
			rec(x.L)
			rec(x.R)
		case lang.Or:
			rec(x.L)
			rec(x.R)
		case lang.Some:
			rec(x.Q)
		case lang.Every:
			rec(x.Q)
		}
	}
	rec(q)
	return out
}

// CorpusStats abstracts the collection-level statistics the scoring models
// depend on. A plain *invlist.Index satisfies it; a sharded deployment
// passes collection-wide statistics (ideally wrapped in Cached) so that
// every shard scores against the whole corpus and per-shard rankings merge
// into the exact single-index ranking.
type CorpusStats interface {
	// NumNodes returns the collection size db_size (cnodes).
	NumNodes() int
	// DF returns the document frequency df(t).
	DF(tok string) int
}

// IDF computes idf(t) = ln(1 + db_size/df(t)) (Section 3.1). Tokens absent
// from the corpus get idf 0. A Cached statistics source serves the value
// from its memo table.
func IDF(st CorpusStats, tok string) float64 {
	if c, ok := st.(*Cached); ok {
		return c.IDF(tok)
	}
	return invlist.IDF(st, tok)
}

// TF computes tf(n, t) = occurs(n, t)/unique_tokens(n) (Section 3.1).
func TF(ix *invlist.Index, node core.NodeID, tok string) float64 {
	u := ix.NodeUniqueTokens(node)
	if u == 0 {
		return 0
	}
	e := ix.List(tok).Find(node)
	if e == nil {
		return 0
	}
	return float64(len(e.Pos)) / float64(u)
}

// NodeNorms computes ||n||2 for every node: the L2 norm of the node's
// TF-IDF vector (cached; see NodeNormsWith).
func NodeNorms(ix *invlist.Index) map[core.NodeID]float64 {
	return NodeNormsWith(ix, ix)
}

// NodeNormsWith computes node norms for the nodes of ix using the idf of st
// (collection-wide statistics in a sharded deployment). Every token of a
// node occurs in the node's own shard, so iterating ix's lists covers the
// node's full TF-IDF vector. The pass is served from the index's cached
// statistics block: the first call per (index, st) pays for it, subsequent
// calls are O(result).
func NodeNormsWith(ix *invlist.Index, st CorpusStats) map[core.NodeID]float64 {
	blk := ix.StatsBlock(st)
	out := make(map[core.NodeID]float64, len(blk.Norms))
	for i, v := range blk.Norms {
		if v > 0 {
			out[core.NodeID(i+1)] = v
		}
	}
	return out
}

// Ranked is a scored node list sorted by descending score (ties by node id).
type Ranked struct {
	Node  core.NodeID
	Score float64
}

// Rank sorts an fta result's scores into a ranked list.
func Rank(res *fta.Result) []Ranked {
	out := make([]Ranked, 0, len(res.Nodes))
	for _, n := range res.Nodes {
		out = append(out, Ranked{Node: n, Score: res.Scores[n]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Node < out[j].Node
	})
	return out
}
