// Package score implements the scoring framework of Section 3: per-tuple
// scoring information initialized at the R_token leaves plus a scoring
// transformation per algebra operator (the fta.Scorer interface). Two
// models are provided:
//
//   - TFIDF (Section 3.1): the classic cosine TF-IDF measure, propagated so
//     that conjunctive and disjunctive queries reproduce the traditional
//     score exactly (Theorem 2);
//   - PRA (Section 3.2): the probabilistic relational algebra of Fuhr and
//     Rölleke, where every tuple carries a probability in [0, 1].
package score

import (
	"math"
	"sort"

	"fulltext/internal/core"
	"fulltext/internal/fta"
	"fulltext/internal/invlist"
	"fulltext/internal/lang"
)

// TokensOf extracts the search tokens of a query in first-occurrence order
// (the bag q of Section 3.1's cosine formula, deduplicated).
func TokensOf(q lang.Query) []string {
	var out []string
	seen := make(map[string]bool)
	var rec func(q lang.Query)
	add := func(t string) {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	rec = func(q lang.Query) {
		switch x := q.(type) {
		case lang.Lit:
			add(x.Tok)
		case lang.Has:
			add(x.Tok)
		case lang.Not:
			rec(x.Q)
		case lang.And:
			rec(x.L)
			rec(x.R)
		case lang.Or:
			rec(x.L)
			rec(x.R)
		case lang.Some:
			rec(x.Q)
		case lang.Every:
			rec(x.Q)
		}
	}
	rec(q)
	return out
}

// CorpusStats abstracts the collection-level statistics the scoring models
// depend on. A plain *invlist.Index satisfies it; a sharded deployment
// passes collection-wide statistics so that every shard scores against the
// whole corpus and per-shard rankings merge into the exact single-index
// ranking.
type CorpusStats interface {
	// NumNodes returns the collection size db_size (cnodes).
	NumNodes() int
	// DF returns the document frequency df(t).
	DF(tok string) int
}

// IDF computes idf(t) = ln(1 + db_size/df(t)) (Section 3.1). Tokens absent
// from the corpus get idf 0.
func IDF(st CorpusStats, tok string) float64 {
	df := st.DF(tok)
	if df == 0 {
		return 0
	}
	return math.Log(1 + float64(st.NumNodes())/float64(df))
}

// TF computes tf(n, t) = occurs(n, t)/unique_tokens(n) (Section 3.1).
func TF(ix *invlist.Index, node core.NodeID, tok string) float64 {
	u := ix.NodeUniqueTokens(node)
	if u == 0 {
		return 0
	}
	e := ix.List(tok).Find(node)
	if e == nil {
		return 0
	}
	return float64(len(e.Pos)) / float64(u)
}

// NodeNorms computes ||n||2 for every node: the L2 norm of the node's
// TF-IDF vector. One pass over every inverted list.
func NodeNorms(ix *invlist.Index) map[core.NodeID]float64 {
	return NodeNormsWith(ix, ix)
}

// NodeNormsWith computes node norms for the nodes of ix using the idf of st
// (collection-wide statistics in a sharded deployment). Every token of a
// node occurs in the node's own shard, so iterating ix's lists covers the
// node's full TF-IDF vector.
func NodeNormsWith(ix *invlist.Index, st CorpusStats) map[core.NodeID]float64 {
	sq := make(map[core.NodeID]float64, ix.NumNodes())
	for _, tok := range ix.Tokens() {
		idf := IDF(st, tok)
		pl := ix.List(tok)
		for i := range pl.Entries {
			e := &pl.Entries[i]
			u := ix.NodeUniqueTokens(e.Node)
			if u == 0 {
				continue
			}
			tf := float64(len(e.Pos)) / float64(u)
			sq[e.Node] += tf * idf * tf * idf
		}
	}
	out := make(map[core.NodeID]float64, len(sq))
	for n, v := range sq {
		out[n] = math.Sqrt(v)
	}
	return out
}

// Ranked is a scored node list sorted by descending score (ties by node id).
type Ranked struct {
	Node  core.NodeID
	Score float64
}

// Rank sorts an fta result's scores into a ranked list.
func Rank(res *fta.Result) []Ranked {
	out := make([]Ranked, 0, len(res.Nodes))
	for _, n := range res.Nodes {
		out = append(out, Ranked{Node: n, Score: res.Scores[n]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Node < out[j].Node
	})
	return out
}
