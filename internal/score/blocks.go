package score

import "fulltext/internal/invlist"

// BlockBounds is the per-block refinement of a model's UpperBound for one
// token on one index: UBs[k] bounds the score any single leaf occurrence of
// the token can contribute for documents inside block k of the token's
// posting list (entries [k*Size, (k+1)*Size)), and Metas carries the block's
// ordinal range so the evaluator can locate the block covering a candidate
// document. A zero-value BlockBounds (nil Metas) means block refinement is
// unavailable and callers must fall back to the per-list bound.
type BlockBounds struct {
	// Size is the block granularity of Metas (entries per block).
	Size int
	// Metas is the posting list's block directory, shared with the index's
	// statistics block; must not be mutated.
	Metas []invlist.BlockMeta
	// UBs holds the per-leaf score upper bound of each block, parallel to
	// Metas. Like UpperBound the values are exact up to floating-point
	// reassociation; callers compare with a relative slack.
	UBs []float64
}

// BlockBounds returns the per-block refinement of UpperBound(tok): UBs[k]
// applies the same idf and query-normalization factors to block k's cached
// max tf/||n||₂ that UpperBound applies to the whole-list maximum, so
// UBs[k] <= UpperBound(tok) for every block in float arithmetic too (the
// whole-list maximum is the max over block maxima).
func (m *TFIDF) BlockBounds(tok string) BlockBounds {
	metas := m.block.Blocks[tok]
	if len(metas) == 0 || m.qnorm == 0 || m.uniqueSearch == 0 {
		return BlockBounds{}
	}
	idf, ok := m.idf[tok]
	if !ok {
		idf = IDF(m.st, tok)
	}
	scale := idf * idf / (float64(m.uniqueSearch) * m.qnorm)
	ubs := make([]float64, len(metas))
	for k := range metas {
		ubs[k] = metas[k].MaxTFNorm * scale
	}
	return BlockBounds{Size: m.block.BlockSize, Metas: metas, UBs: ubs}
}

// BlockBounds returns the per-block refinement of UpperBound(tok) for the
// probabilistic model: 1 − (1−p)^maxOcc(block) with p = idf(t)/NF, the
// noisy-or of the block's largest occurrence count, accumulated with the
// same repeated multiplication the Project rule uses so each block bound
// dominates its documents' leaf values in float arithmetic.
func (m *PRA) BlockBounds(tok string) BlockBounds {
	blk := m.ix.StatsBlock(m.st)
	metas := blk.Blocks[tok]
	if len(metas) == 0 || m.nf == 0 {
		return BlockBounds{}
	}
	p := clamp01(IDF(m.st, tok) / m.nf)
	if p <= 0 {
		return BlockBounds{}
	}
	ubs := make([]float64, len(metas))
	for k := range metas {
		if p >= 1 {
			ubs[k] = 1
			continue
		}
		q := 1.0
		for i := int32(0); i < metas[k].MaxOcc; i++ {
			q *= 1 - p
		}
		ubs[k] = clamp01(1 - q)
	}
	return BlockBounds{Size: blk.BlockSize, Metas: metas, UBs: ubs}
}
