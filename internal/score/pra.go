package score

import (
	"math"

	"fulltext/internal/core"
	"fulltext/internal/invlist"
)

// PRA is the probabilistic relational algebra scoring of Section 3.2. Every
// tuple carries a probability in [0, 1]; operators transform probabilities:
//
//	projection   1 − ∏(1 − sᵢ)         (noisy-or over collapsing tuples)
//	join         s₁ · s₂
//	selection    s · f(pred)            (distance: f = 1 − |p1−p2|/dist)
//	union        1 − (1−s₁)(1−s₂)
//	intersection s₁ · s₂
//	difference   s₁ · (1 − s₂) = s₁ for surviving tuples (s₂ = 0)
//
// Leaf probabilities are IDF/NF with NF = ln(1 + db_size), the maximum
// possible idf, so leaves always land in [0, 1].
type PRA struct {
	ix *invlist.Index
	st CorpusStats
	nf float64
}

// NewPRA builds the model for an index.
func NewPRA(ix *invlist.Index) *PRA {
	return NewPRAWith(ix, ix)
}

// NewPRAWith builds the model scoring the nodes of ix against the
// collection statistics st (see NewTFIDFWith).
func NewPRAWith(ix *invlist.Index, st CorpusStats) *PRA {
	return &PRA{ix: ix, st: st, nf: math.Log(1 + float64(st.NumNodes()))}
}

// UpperBound returns a per-query-leaf probability upper bound for tok: a
// node's noisy-or aggregation of one leaf's R_tok tuples is
// 1 − (1−p)^occurs(n,t) with p = idf(t)/NF, which is maximized at the
// list's largest occurrence count (cached in the statistics block). The
// bound multiplies (1−p) the same way the Project rule does, so it
// dominates every node's leaf value in float arithmetic too.
func (m *PRA) UpperBound(tok string) float64 {
	if m.nf == 0 {
		return 0
	}
	p := clamp01(IDF(m.st, tok) / m.nf)
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	blk := m.ix.StatsBlock(m.st)
	q := 1.0
	for i := 0; i < blk.MaxOcc[tok]; i++ {
		q *= 1 - p
	}
	return clamp01(1 - q)
}

// LeafToken implements fta.Scorer: probability idf(t)/NF.
func (m *PRA) LeafToken(tok string, node core.NodeID) float64 {
	if m.nf == 0 {
		return 0
	}
	return clamp01(IDF(m.st, tok) / m.nf)
}

// LeafHasPos implements fta.Scorer: a position is certainly a position.
func (m *PRA) LeafHasPos(core.NodeID) float64 { return 1 }

// LeafContext implements fta.Scorer: a node certainly exists.
func (m *PRA) LeafContext(core.NodeID) float64 { return 1 }

// Join multiplies probabilities.
func (m *PRA) Join(s1, s2 float64, n1, n2 int) float64 { return clamp01(s1 * s2) }

// Project is the noisy-or aggregation.
func (m *PRA) Project(parts []float64) float64 {
	p := 1.0
	for _, s := range parts {
		p *= 1 - clamp01(s)
	}
	return clamp01(1 - p)
}

// Select scales by a per-predicate relevance function f in [0, 1].
func (m *PRA) Select(s float64, predName string, pos []core.Pos, consts []int) float64 {
	return clamp01(s * predFactor(predName, pos, consts))
}

// predFactor is the f function of Section 3.2: distance selections decay
// with the gap, everything else is neutral.
func predFactor(predName string, pos []core.Pos, consts []int) float64 {
	switch predName {
	case "distance":
		if len(pos) != 2 || len(consts) != 1 {
			return 1
		}
		d := float64(consts[0])
		if d <= 0 {
			d = 1
		}
		gap := math.Abs(float64(pos[0].Ord - pos[1].Ord))
		return clamp01(1 - gap/(d+1))
	default:
		return 1
	}
}

// Union is the probabilistic or.
func (m *PRA) Union(sL, sR float64, haveL, haveR bool) float64 {
	l, r := 0.0, 0.0
	if haveL {
		l = clamp01(sL)
	}
	if haveR {
		r = clamp01(sR)
	}
	return clamp01(1 - (1-l)*(1-r))
}

// Intersect multiplies (a join on all attributes, per Section 3.2).
func (m *PRA) Intersect(sL, sR float64) float64 { return clamp01(sL * sR) }

// Diff keeps s₁·(1 − s₂); surviving tuples have s₂ = 0.
func (m *PRA) Diff(s float64) float64 { return clamp01(s) }

// Negate implements the negation rule 1 − s for callers composing scores
// outside the algebra.
func (m *PRA) Negate(s float64) float64 { return clamp01(1 - s) }

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}
