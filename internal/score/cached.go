package score

import (
	"math"
	"sync"

	"fulltext/internal/invlist"
)

// Cached wraps a CorpusStats source with a concurrency-safe memo of derived
// per-token statistics (idf) and the collection normalizer NF. Beyond the
// memoization, a Cached value is a stable identity: sharded indexes build
// one Cached over their global statistics at construction time and pass the
// same pointer to every shard on every query, so each shard's
// invlist.StatsBlock cache is keyed by it and computed exactly once for the
// life of the index — the "build the cache once, reuse across queries and
// shards" contract of the ranked fast path.
type Cached struct {
	st CorpusStats

	mu  sync.RWMutex
	idf map[string]float64
	nf  float64
}

// NewCached wraps st. Wrapping an existing Cached returns it unchanged.
func NewCached(st CorpusStats) *Cached {
	if c, ok := st.(*Cached); ok {
		return c
	}
	return &Cached{
		st:  st,
		idf: make(map[string]float64),
		nf:  math.Log(1 + float64(st.NumNodes())),
	}
}

// NumNodes implements CorpusStats.
func (c *Cached) NumNodes() int { return c.st.NumNodes() }

// DF implements CorpusStats.
func (c *Cached) DF(tok string) int { return c.st.DF(tok) }

// IDF returns the memoized idf(t).
func (c *Cached) IDF(tok string) float64 {
	c.mu.RLock()
	v, ok := c.idf[tok]
	c.mu.RUnlock()
	if ok {
		return v
	}
	v = invlist.IDF(c.st, tok)
	c.mu.Lock()
	c.idf[tok] = v
	c.mu.Unlock()
	return v
}

// NF returns ln(1 + db_size), the PRA leaf normalizer.
func (c *Cached) NF() float64 { return c.nf }
