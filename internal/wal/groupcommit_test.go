package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fulltext/internal/errfs"
)

// memLog opens a log on a fresh in-memory filesystem.
func memLog(t *testing.T, opts Options) (*errfs.Mem, *Log) {
	t.Helper()
	m := errfs.NewMem()
	opts.FS = m
	l, _, err := Open("wal", opts)
	if err != nil {
		t.Fatalf("opening mem log: %v", err)
	}
	return m, l
}

// TestGroupCommitBatchesConcurrentAppends is the headline group-commit
// property: N concurrent committers under SyncAlways complete with fewer
// than N fsyncs, because parked waiters share the flusher's batches. The
// injected sync delay widens the batching window the way a real disk's
// write latency would.
func TestGroupCommitBatchesConcurrentAppends(t *testing.T) {
	m, l := memLog(t, Options{Sync: SyncAlways})
	defer l.Close()
	m.SyncDelay(2 * time.Millisecond)
	const n = 32
	base := m.SyncCalls()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = l.Append(TypeAdd, EncodeAdd(Doc{ID: fmt.Sprintf("doc%02d", i), Body: "alpha beta"}))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	syncs := m.SyncCalls() - base
	if syncs >= n {
		t.Fatalf("%d concurrent appends took %d fsyncs; group commit should batch them below %d", n, syncs, n)
	}
	st := l.Stats()
	if st.DurableLSN != n {
		t.Fatalf("durable LSN %d after %d acknowledged appends", st.DurableLSN, n)
	}
	if st.GroupCommitRecords != n {
		t.Fatalf("group-commit records %d, want %d", st.GroupCommitRecords, n)
	}
	if st.GroupCommits == 0 || st.GroupCommits >= n {
		t.Fatalf("group commits %d for %d records; batching never happened", st.GroupCommits, n)
	}
	t.Logf("%d records, %d fsyncs, mean batch %.1f", n, syncs, float64(st.GroupCommitRecords)/float64(st.GroupCommits))
}

// TestGroupCommitSingleAppendStillDurable checks the degenerate batch: one
// lone committer gets its fsync immediately, not after some timeout.
func TestGroupCommitSingleAppendStillDurable(t *testing.T) {
	m, l := memLog(t, Options{Sync: SyncAlways})
	defer l.Close()
	start := time.Now()
	if _, err := l.Append(TypeAdd, EncodeAdd(Doc{ID: "a", Body: "alpha"})); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("single append took %v; the flusher must not dawdle waiting for company", d)
	}
	if got := l.Stats().DurableLSN; got != 1 {
		t.Fatalf("durable LSN %d after acknowledged append", got)
	}
	if m.UnsyncedBytes(filepath.Join("wal", segName(0))) != 0 {
		t.Fatal("acknowledged record left unsynced bytes behind")
	}
}

// TestTornWriteRecoveryMatrix enumerates every possible crash offset
// inside a record that reached the kernel but was never fsynced: for each
// prefix length k the reopened log must recover exactly the durable
// records, report the torn tail, and keep appending — no panic, no silent
// gap, no half-applied record.
func TestTornWriteRecoveryMatrix(t *testing.T) {
	// Measure the wire size of the record being torn once, up front.
	sizer := errfs.NewMem()
	{
		l, _, err := Open("wal", Options{Sync: SyncAlways, FS: sizer})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append(TypeAdd, EncodeAdd(Doc{ID: "torn", Body: "gamma delta"})); err != nil {
			t.Fatal(err)
		}
		l.Close()
	}
	recBytes := int(sizer.UnsyncedBytes(filepath.Join("wal", segName(0))))
	if recBytes <= 0 {
		// The sizing append was synced (as SyncAlways must); recover the
		// size from the segment length minus the 13-byte header instead.
		data, ok := sizer.ReadFileCurrent(filepath.Join("wal", segName(0)))
		if !ok {
			t.Fatal("sizing segment vanished")
		}
		recBytes = len(data) - 13
	}
	if recBytes < 9 {
		t.Fatalf("implausible record size %d", recBytes)
	}

	for k := 0; k <= recBytes; k++ {
		k := k
		t.Run(fmt.Sprintf("keep=%d", k), func(t *testing.T) {
			m := errfs.NewMem()
			l, _, err := Open("wal", Options{Sync: SyncAlways, FS: m})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if _, err := l.Append(TypeAdd, EncodeAdd(Doc{ID: fmt.Sprintf("d%d", i), Body: "alpha beta"})); err != nil {
					t.Fatal(err)
				}
			}
			// The fourth record reaches the kernel but is never fsynced.
			if _, err := l.AppendAsync(TypeAdd, EncodeAdd(Doc{ID: "torn", Body: "gamma delta"})); err != nil {
				t.Fatal(err)
			}
			seg := filepath.Join("wal", segName(0))
			if got := m.UnsyncedBytes(seg); got != recBytes {
				t.Fatalf("unsynced tail %d bytes, expected the %d-byte record", got, recBytes)
			}
			m.CrashKeep(k) // power loss persisting only k bytes of the tail
			l.Close()      // stale handles; stops the flusher, error expected

			var got []Record
			st, err := ReplayFS(m, "wal", 0, func(r Record) error {
				got = append(got, r)
				return nil
			})
			if err != nil {
				t.Fatalf("replay after %d-byte torn write: %v", k, err)
			}
			want := 3
			if k == recBytes {
				want = 4 // the whole record made it down before the crash
			}
			if len(got) != want {
				t.Fatalf("recovered %d records, want %d", len(got), want)
			}
			for i, r := range got {
				if r.LSN != uint64(i) {
					t.Fatalf("record %d has LSN %d; recovery must deliver a contiguous prefix", i, r.LSN)
				}
			}
			if wantTorn := k > 0 && k < recBytes; st.TornTail != wantTorn {
				t.Fatalf("TornTail=%v for %d of %d bytes", st.TornTail, k, recBytes)
			}
			// The reopened log must truncate the tail and accept appends.
			re, ost, err := Open("wal", Options{Sync: SyncAlways, FS: m})
			if err != nil {
				t.Fatalf("reopening after %d-byte torn write: %v", k, err)
			}
			defer re.Close()
			if wantDrop := k > 0 && k < recBytes; (ost.TornTailBytes > 0) != wantDrop {
				t.Fatalf("open dropped %d torn bytes, torn=%v", ost.TornTailBytes, wantDrop)
			}
			if lsn, err := re.Append(TypeAdd, EncodeAdd(Doc{ID: "after", Body: "epsilon"})); err != nil || lsn != uint64(want) {
				t.Fatalf("append after recovery: lsn %d, err %v", lsn, err)
			}
		})
	}
}

// TestFailedFsyncFailsWaitersAndPoisonsLog injects one fsync failure: the
// waiting committer must get the error (durability unknown, not silently
// acknowledged) and every later append must be refused — a log that cannot
// reach its disk never hands out another LSN.
func TestFailedFsyncFailsWaitersAndPoisonsLog(t *testing.T) {
	m, l := memLog(t, Options{Sync: SyncAlways})
	defer l.Close()
	if _, err := l.Append(TypeAdd, EncodeAdd(Doc{ID: "ok", Body: "alpha"})); err != nil {
		t.Fatal(err)
	}
	m.FailSyncAt(1)
	if _, err := l.Append(TypeAdd, EncodeAdd(Doc{ID: "doomed", Body: "beta"})); !errors.Is(err, errfs.ErrInjected) {
		t.Fatalf("append over failed fsync: %v, want injected error", err)
	}
	if _, err := l.Append(TypeAdd, EncodeAdd(Doc{ID: "later", Body: "gamma"})); err == nil {
		t.Fatal("append on a poisoned log succeeded")
	}
	if st := l.Stats(); st.DurableLSN != 1 {
		t.Fatalf("durable LSN %d; only the pre-failure record was ever durable", st.DurableLSN)
	}
}

// TestFailedFsyncReleasesAllWaiters parks several committers on one batch
// and fails its fsync: every waiter must be released with the error, none
// may hang.
func TestFailedFsyncReleasesAllWaiters(t *testing.T) {
	m, l := memLog(t, Options{Sync: SyncAlways})
	defer l.Close()
	m.SyncDelay(2 * time.Millisecond)
	m.FailSyncAt(1)
	const n = 8
	errsCh := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := l.Append(TypeAdd, EncodeAdd(Doc{ID: fmt.Sprintf("w%d", i), Body: "alpha"}))
			errsCh <- err
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("committers hung after a failed fsync")
	}
	close(errsCh)
	for err := range errsCh {
		if err == nil {
			t.Fatal("a committer was acknowledged across a failed fsync")
		}
	}
}

// TestSyncDelayDoesNotBlockAppends checks the off-lock fsync design
// directly: while one batch's (slow) fsync is in flight, new appends keep
// landing in the kernel instead of queueing behind the disk.
func TestSyncDelayDoesNotBlockAppends(t *testing.T) {
	m, l := memLog(t, Options{Sync: SyncAlways})
	defer l.Close()
	m.SyncDelay(20 * time.Millisecond)
	first := make(chan error, 1)
	go func() {
		_, err := l.Append(TypeAdd, EncodeAdd(Doc{ID: "slow", Body: "alpha"}))
		first <- err
	}()
	// Wait until the first committer's fsync is plausibly in flight, then
	// time bare AppendAsync calls — they must not wait the full delay.
	time.Sleep(5 * time.Millisecond)
	start := time.Now()
	for i := 0; i < 4; i++ {
		if _, err := l.AppendAsync(TypeAdd, EncodeAdd(Doc{ID: fmt.Sprintf("fast%d", i), Body: "beta"})); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d > 15*time.Millisecond {
		t.Fatalf("4 kernel appends took %v while an fsync was in flight; the sync must run off the lock", d)
	}
	if err := <-first; err != nil {
		t.Fatal(err)
	}
}
