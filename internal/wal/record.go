package wal

import (
	"encoding/binary"
	"fmt"
)

// This file defines the payload wire format of each record type: uvarint
// length-prefixed strings and uvarint counts, mirroring the index
// persistence codecs. Encoders never fail; decoders validate every length
// against sane bounds so a flipped bit in a count cannot turn into a
// multi-gigabyte allocation (the CRC catches flipped bits first, but
// decode-time bounds keep the failure mode an error either way).

// Decode-time sanity bounds.
const (
	maxIDLen   = 1 << 20
	maxBodyLen = maxRecordBytes
	maxCount   = 1 << 31
)

// Doc is the logged form of one raw-text document (TypeAdd, TypeAddBatch).
type Doc struct {
	ID   string
	Body string
}

// TokenDoc is the logged form of one pre-tokenized document
// (TypeAddTokens, TypeAddTokensBatch).
type TokenDoc struct {
	ID     string
	Tokens []string
}

func appendString(p []byte, s string) []byte {
	p = binary.AppendUvarint(p, uint64(len(s)))
	return append(p, s...)
}

// payloadReader decodes the uvarint-framed payload encoding.
type payloadReader struct {
	p   []byte
	off int
}

func (r *payloadReader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.p[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wal: truncated %s", what)
	}
	r.off += n
	return v, nil
}

func (r *payloadReader) str(what string, max uint64) (string, error) {
	l, err := r.uvarint(what + " length")
	if err != nil {
		return "", err
	}
	if l > max {
		return "", fmt.Errorf("wal: %s length %d too large", what, l)
	}
	if uint64(len(r.p)-r.off) < l {
		return "", fmt.Errorf("wal: truncated %s", what)
	}
	s := string(r.p[r.off : r.off+int(l)])
	r.off += int(l)
	return s, nil
}

// done verifies the whole payload was consumed: trailing bytes mean the
// record was encoded by something this decoder does not understand.
func (r *payloadReader) done(t Type) error {
	if r.off != len(r.p) {
		return fmt.Errorf("wal: %s record has %d trailing bytes", t, len(r.p)-r.off)
	}
	return nil
}

// EncodeAdd encodes a TypeAdd payload.
func EncodeAdd(d Doc) []byte {
	p := appendString(nil, d.ID)
	return appendString(p, d.Body)
}

// DecodeAdd decodes a TypeAdd payload.
func DecodeAdd(p []byte) (Doc, error) {
	r := &payloadReader{p: p}
	var d Doc
	var err error
	if d.ID, err = r.str("id", maxIDLen); err != nil {
		return Doc{}, err
	}
	if d.Body, err = r.str("body", maxBodyLen); err != nil {
		return Doc{}, err
	}
	return d, r.done(TypeAdd)
}

// EncodeAddBatch encodes a TypeAddBatch payload.
func EncodeAddBatch(docs []Doc) []byte {
	p := binary.AppendUvarint(nil, uint64(len(docs)))
	for _, d := range docs {
		p = appendString(p, d.ID)
		p = appendString(p, d.Body)
	}
	return p
}

// DecodeAddBatch decodes a TypeAddBatch payload.
func DecodeAddBatch(p []byte) ([]Doc, error) {
	r := &payloadReader{p: p}
	n, err := r.uvarint("batch size")
	if err != nil {
		return nil, err
	}
	if n > maxCount {
		return nil, fmt.Errorf("wal: batch size %d too large", n)
	}
	docs := make([]Doc, n)
	for i := range docs {
		if docs[i].ID, err = r.str("id", maxIDLen); err != nil {
			return nil, err
		}
		if docs[i].Body, err = r.str("body", maxBodyLen); err != nil {
			return nil, err
		}
	}
	return docs, r.done(TypeAddBatch)
}

func appendTokenDoc(p []byte, d TokenDoc) []byte {
	p = appendString(p, d.ID)
	p = binary.AppendUvarint(p, uint64(len(d.Tokens)))
	for _, t := range d.Tokens {
		p = appendString(p, t)
	}
	return p
}

func (r *payloadReader) tokenDoc() (TokenDoc, error) {
	var d TokenDoc
	var err error
	if d.ID, err = r.str("id", maxIDLen); err != nil {
		return TokenDoc{}, err
	}
	n, err := r.uvarint("token count")
	if err != nil {
		return TokenDoc{}, err
	}
	if n > maxCount {
		return TokenDoc{}, fmt.Errorf("wal: token count %d too large", n)
	}
	d.Tokens = make([]string, n)
	for i := range d.Tokens {
		if d.Tokens[i], err = r.str("token", maxIDLen); err != nil {
			return TokenDoc{}, err
		}
	}
	return d, nil
}

// EncodeAddTokens encodes a TypeAddTokens payload.
func EncodeAddTokens(d TokenDoc) []byte {
	return appendTokenDoc(nil, d)
}

// DecodeAddTokens decodes a TypeAddTokens payload.
func DecodeAddTokens(p []byte) (TokenDoc, error) {
	r := &payloadReader{p: p}
	d, err := r.tokenDoc()
	if err != nil {
		return TokenDoc{}, err
	}
	return d, r.done(TypeAddTokens)
}

// EncodeAddTokensBatch encodes a TypeAddTokensBatch payload.
func EncodeAddTokensBatch(docs []TokenDoc) []byte {
	p := binary.AppendUvarint(nil, uint64(len(docs)))
	for _, d := range docs {
		p = appendTokenDoc(p, d)
	}
	return p
}

// DecodeAddTokensBatch decodes a TypeAddTokensBatch payload.
func DecodeAddTokensBatch(p []byte) ([]TokenDoc, error) {
	r := &payloadReader{p: p}
	n, err := r.uvarint("batch size")
	if err != nil {
		return nil, err
	}
	if n > maxCount {
		return nil, fmt.Errorf("wal: batch size %d too large", n)
	}
	docs := make([]TokenDoc, n)
	for i := range docs {
		if docs[i], err = r.tokenDoc(); err != nil {
			return nil, err
		}
	}
	return docs, r.done(TypeAddTokensBatch)
}

// EncodeDelete encodes a TypeDelete payload.
func EncodeDelete(id string) []byte {
	return appendString(nil, id)
}

// DecodeDelete decodes a TypeDelete payload.
func DecodeDelete(p []byte) (string, error) {
	r := &payloadReader{p: p}
	id, err := r.str("id", maxIDLen)
	if err != nil {
		return "", err
	}
	return id, r.done(TypeDelete)
}

// EncodeDeleteBatch encodes a TypeDeleteBatch payload.
func EncodeDeleteBatch(ids []string) []byte {
	p := binary.AppendUvarint(nil, uint64(len(ids)))
	for _, id := range ids {
		p = appendString(p, id)
	}
	return p
}

// DecodeDeleteBatch decodes a TypeDeleteBatch payload.
func DecodeDeleteBatch(p []byte) ([]string, error) {
	r := &payloadReader{p: p}
	n, err := r.uvarint("batch size")
	if err != nil {
		return nil, err
	}
	if n > maxCount {
		return nil, fmt.Errorf("wal: batch size %d too large", n)
	}
	ids := make([]string, n)
	for i := range ids {
		if ids[i], err = r.str("id", maxIDLen); err != nil {
			return nil, err
		}
	}
	return ids, r.done(TypeDeleteBatch)
}

// EncodeCheckpoint encodes a TypeCheckpoint payload: the LSN the persisted
// snapshot covers (every record below it is reflected in the snapshot).
func EncodeCheckpoint(snapshotLSN uint64) []byte {
	return binary.AppendUvarint(nil, snapshotLSN)
}

// DecodeCheckpoint decodes a TypeCheckpoint payload.
func DecodeCheckpoint(p []byte) (uint64, error) {
	r := &payloadReader{p: p}
	lsn, err := r.uvarint("snapshot LSN")
	if err != nil {
		return 0, err
	}
	return lsn, r.done(TypeCheckpoint)
}
