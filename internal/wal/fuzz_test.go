package wal

import (
	"os"
	"path/filepath"
	"testing"

	"fulltext/internal/errfs"
)

// fuzzSeedSegment builds a genuine segment holding one record of every
// payload type, so the fuzzer starts from structurally valid bytes and
// mutates from there.
func fuzzSeedSegment(f *testing.F) []byte {
	f.Helper()
	m := errfs.NewMem()
	l, _, err := Open("wal", Options{Sync: SyncAlways, FS: m})
	if err != nil {
		f.Fatal(err)
	}
	appends := []struct {
		t Type
		p []byte
	}{
		{TypeAdd, EncodeAdd(Doc{ID: "a", Body: "alpha beta gamma"})},
		{TypeAddTokens, EncodeAddTokens(TokenDoc{ID: "b", Tokens: []string{"delta", "epsilon"}})},
		{TypeAddBatch, EncodeAddBatch([]Doc{{ID: "c", Body: "zeta"}, {ID: "d", Body: "eta theta"}})},
		{TypeDelete, EncodeDelete("a")},
		{TypeDeleteBatch, EncodeDeleteBatch([]string{"b", "c"})},
		{TypeCheckpoint, EncodeCheckpoint(3)},
	}
	for _, a := range appends {
		if _, err := l.Append(a.t, a.p); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	data, ok := m.ReadFileCurrent(filepath.Join("wal", segName(0)))
	if !ok {
		f.Fatal("seed segment vanished")
	}
	return data
}

// FuzzWALReplay feeds arbitrary bytes to the log reader as a lone segment
// file and holds it to the recovery contract: it never panics, it never
// delivers records with an LSN gap (a skipped mid-log record would replay
// reordered history), and whenever Open accepts the directory the
// resulting log must actually work. Corrupt input may error loudly or
// recover a valid prefix — both are correct; silence about a gap is not.
func FuzzWALReplay(f *testing.F) {
	seed := fuzzSeedSegment(f)
	f.Add(seed)
	if len(seed) > 4 {
		f.Add(seed[:len(seed)-3]) // torn final record
		f.Add(seed[:7])           // torn header
		flipped := append([]byte(nil), seed...)
		flipped[len(flipped)/2] ^= 0x40 // corrupt one payload byte
		f.Add(flipped)
		truncated := append([]byte(nil), seed[:headerSize+2]...)
		f.Add(truncated) // header plus a dangling length prefix
	}
	f.Add([]byte{})
	f.Add([]byte("FTWL"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m := errfs.NewMem()
		if err := m.MkdirAll("wal", 0o755); err != nil {
			t.Fatal(err)
		}
		w, err := m.OpenFile(filepath.Join("wal", segName(0)), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := m.SyncDir("wal"); err != nil {
			t.Fatal(err)
		}

		var delivered uint64
		var prev uint64
		st, rerr := ReplayFS(m, "wal", 0, func(r Record) error {
			if delivered > 0 && r.LSN != prev+1 {
				t.Fatalf("replay skipped from LSN %d to %d without erroring", prev, r.LSN)
			}
			prev = r.LSN
			delivered++
			return nil
		})
		if rerr == nil && st.Delivered != delivered {
			t.Fatalf("stats claim %d delivered, callback saw %d", st.Delivered, delivered)
		}

		// Open may reject the bytes (loudly) or truncate a torn tail and
		// carry on — but it may never hand back a log that cannot append.
		l, _, oerr := Open("wal", Options{Sync: SyncAlways, FS: m})
		if oerr != nil {
			return
		}
		if _, err := l.Append(TypeAdd, EncodeAdd(Doc{ID: "post", Body: "iota"})); err != nil {
			t.Fatalf("log accepted at Open but refused an append: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("closing recovered log: %v", err)
		}
	})
}
