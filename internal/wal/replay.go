package wal

import (
	"bufio"
	"errors"
	"fmt"
	"os"

	"fulltext/internal/errfs"
)

// Record is one replayed log entry.
type Record struct {
	LSN     uint64
	Type    Type
	Payload []byte
}

// ReplayStats summarizes one Replay pass.
type ReplayStats struct {
	// Delivered counts records handed to the callback (LSN >= from).
	Delivered uint64
	// Skipped counts records below the starting LSN — history already
	// reflected in the snapshot being replayed over. Non-zero after a crash
	// between checkpoint and truncation; their harmlessness is what makes
	// recovery idempotent.
	Skipped uint64
	// TornTail reports that the final segment ended mid-record and the
	// incomplete tail was dropped.
	TornTail bool
	// LastLSN is the LSN of the last valid record seen (delivered or
	// skipped); zero when the log is empty.
	LastLSN uint64
}

// Replay reads every record in the log directory in LSN order, invoking fn
// for each record with LSN >= from. It validates the whole log as it goes:
// segment headers must chain contiguously (each segment starting where the
// previous ended), every record checksum must verify, and only the final
// segment may end mid-record — that torn tail is dropped and reported in
// the stats, exactly as Open would truncate it. A callback error aborts the
// replay and is returned verbatim.
//
// Replay opens the files read-only and takes no locks, so it must run
// before the same directory is opened for appending (the recovery sequence:
// load snapshot, Replay, then Open and attach).
func Replay(dir string, from uint64, fn func(Record) error) (ReplayStats, error) {
	return ReplayFS(errfs.OS, dir, from, fn)
}

// ReplayFS is Replay on an explicit filesystem (see errfs); recovery of a
// fault-injected durable index replays through the same injected FS it
// crashed on.
func ReplayFS(fsys errfs.FS, dir string, from uint64, fn func(Record) error) (ReplayStats, error) {
	var st ReplayStats
	segs, err := listSegments(fsys, dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return st, nil
		}
		return st, err
	}
	var expect uint64
	for i, seg := range segs {
		if i > 0 && seg.firstLSN != expect {
			return st, fmt.Errorf("wal: segment chain gap: %s starts at LSN %d, expected %d", seg.path, seg.firstLSN, expect)
		}
		last := i == len(segs)-1
		f, err := fsys.OpenFile(seg.path, os.O_RDONLY, 0)
		if err != nil {
			return st, fmt.Errorf("wal: opening %s: %w", seg.path, err)
		}
		br := bufio.NewReader(f)
		scan, err := readSegment(br, seg.path, func(idx int, t Type, payload []byte) error {
			lsn := seg.firstLSN + uint64(idx)
			st.LastLSN = lsn
			if lsn < from {
				st.Skipped++
				return nil
			}
			st.Delivered++
			return fn(Record{LSN: lsn, Type: t, Payload: payload})
		})
		f.Close()
		if err == errTorn {
			if !last {
				return st, fmt.Errorf("wal: %s truncated mid-record but is not the final segment", seg.path)
			}
			st.TornTail = true
			err = nil
		}
		if err != nil {
			return st, err
		}
		if !scan.headerOK {
			continue // final segment died before its header; it holds nothing
		}
		if scan.firstLSN != seg.firstLSN {
			return st, fmt.Errorf("wal: %s header claims first LSN %d", seg.path, scan.firstLSN)
		}
		expect = scan.firstLSN + uint64(scan.records)
	}
	return st, nil
}
