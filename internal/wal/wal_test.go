package wal

import (
	"encoding/binary"

	"fulltext/internal/errfs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// collect replays the whole directory into a slice.
func collect(t *testing.T, dir string, from uint64) ([]Record, ReplayStats) {
	t.Helper()
	var recs []Record
	st, err := Replay(dir, from, func(r Record) error {
		recs = append(recs, Record{LSN: r.LSN, Type: r.Type, Payload: append([]byte(nil), r.Payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs, st
}

func TestAppendAndReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, st, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if st.NextLSN != 0 || st.Segments != 1 {
		t.Fatalf("fresh open: %+v", st)
	}
	want := []struct {
		t Type
		p []byte
	}{
		{TypeAdd, EncodeAdd(Doc{ID: "a", Body: "hello world"})},
		{TypeAddTokens, EncodeAddTokens(TokenDoc{ID: "b", Tokens: []string{"x", "y"}})},
		{TypeAddBatch, EncodeAddBatch([]Doc{{ID: "c", Body: ""}, {ID: "d", Body: "zz"}})},
		{TypeDelete, EncodeDelete("a")},
		{TypeDeleteBatch, EncodeDeleteBatch([]string{"b", "missing"})},
		{TypeCheckpoint, EncodeCheckpoint(3)},
	}
	for i, w := range want {
		lsn, err := l.Append(w.t, w.p)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if lsn != uint64(i) {
			t.Fatalf("append %d: lsn %d", i, lsn)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, rst := collect(t, dir, 0)
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.LSN != uint64(i) || r.Type != want[i].t || !reflect.DeepEqual(r.Payload, want[i].p) {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
	if rst.Delivered != uint64(len(want)) || rst.Skipped != 0 || rst.TornTail {
		t.Fatalf("replay stats: %+v", rst)
	}

	// Replaying from a later LSN skips the prefix.
	recs, rst = collect(t, dir, 4)
	if len(recs) != 2 || recs[0].LSN != 4 || rst.Skipped != 4 {
		t.Fatalf("partial replay: %d records, stats %+v", len(recs), rst)
	}
}

func TestPayloadCodecs(t *testing.T) {
	d, err := DecodeAdd(EncodeAdd(Doc{ID: "id", Body: "body text"}))
	if err != nil || d.ID != "id" || d.Body != "body text" {
		t.Fatalf("add: %+v, %v", d, err)
	}
	td, err := DecodeAddTokens(EncodeAddTokens(TokenDoc{ID: "t", Tokens: []string{"a", "", "c"}}))
	if err != nil || td.ID != "t" || !reflect.DeepEqual(td.Tokens, []string{"a", "", "c"}) {
		t.Fatalf("add-tokens: %+v, %v", td, err)
	}
	batch, err := DecodeAddBatch(EncodeAddBatch(nil))
	if err != nil || len(batch) != 0 {
		t.Fatalf("empty batch: %+v, %v", batch, err)
	}
	tb, err := DecodeAddTokensBatch(EncodeAddTokensBatch([]TokenDoc{{ID: "z"}}))
	if err != nil || len(tb) != 1 || tb[0].ID != "z" || len(tb[0].Tokens) != 0 {
		t.Fatalf("token batch: %+v, %v", tb, err)
	}
	ids, err := DecodeDeleteBatch(EncodeDeleteBatch([]string{"p", "q"}))
	if err != nil || !reflect.DeepEqual(ids, []string{"p", "q"}) {
		t.Fatalf("delete batch: %+v, %v", ids, err)
	}
	lsn, err := DecodeCheckpoint(EncodeCheckpoint(42))
	if err != nil || lsn != 42 {
		t.Fatalf("checkpoint: %d, %v", lsn, err)
	}
	// Truncated and trailing-garbage payloads fail.
	if _, err := DecodeAdd([]byte{200}); err == nil {
		t.Fatal("truncated add decoded")
	}
	if _, err := DecodeDelete(append(EncodeDelete("x"), 0)); err == nil {
		t.Fatal("trailing bytes decoded")
	}
}

func TestRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so every couple of records rotates.
	l, _, err := Open(dir, Options{Sync: SyncNone, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := l.Append(TypeDelete, EncodeDelete("some-document-id")); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	if err := l.Sync(); err != nil { // SyncNone buffers in process until asked
		t.Fatal(err)
	}
	recs, _ := collect(t, dir, 0)
	if len(recs) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(recs), n)
	}

	// Truncating below the newest segment's first LSN removes sealed
	// segments; every surviving record is still replayable.
	cut := l.NextLSN() - 2
	if err := l.TruncateBefore(cut); err != nil {
		t.Fatal(err)
	}
	after := l.Stats()
	if after.Segments >= st.Segments || after.TruncatedSegments == 0 {
		t.Fatalf("truncate removed nothing: %+v -> %+v", st, after)
	}
	recs, rst := collect(t, dir, cut)
	if rst.Delivered != 2 || recs[len(recs)-1].LSN != uint64(n-1) {
		t.Fatalf("post-truncate replay: %+v", rst)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen continues numbering where the log left off.
	l2, ost, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if ost.NextLSN != uint64(n) {
		t.Fatalf("reopen NextLSN %d, want %d", ost.NextLSN, n)
	}
}

func TestEmptyDirAndStartLSN(t *testing.T) {
	dir := t.TempDir()
	recs, st := collect(t, dir, 0)
	if len(recs) != 0 || st.Delivered != 0 || st.TornTail {
		t.Fatalf("empty dir replay: %d records, %+v", len(recs), st)
	}
	// A fresh log over an existing snapshot starts at the snapshot's LSN.
	l, ost, err := Open(dir, Options{Sync: SyncNone, StartLSN: 100})
	if err != nil {
		t.Fatal(err)
	}
	if ost.NextLSN != 100 {
		t.Fatalf("StartLSN ignored: %+v", ost)
	}
	lsn, err := l.Append(TypeDelete, EncodeDelete("x"))
	if err != nil || lsn != 100 {
		t.Fatalf("append at StartLSN: %d, %v", lsn, err)
	}
	l.Close()
}

// tornWrite chops the last n bytes off the newest segment, simulating a
// crash mid-write.
func tornWrite(t *testing.T, dir string, n int64) {
	t.Helper()
	segs, err := listSegments(errfs.OS, dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	path := segs[len(segs)-1].path
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-n); err != nil {
		t.Fatal(err)
	}
}

func TestTornFinalRecordDropped(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(TypeAdd, EncodeAdd(Doc{ID: "doc", Body: "payload payload payload"})); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	tornWrite(t, dir, 5) // mid-CRC of the final record

	recs, st := collect(t, dir, 0)
	if len(recs) != 2 || !st.TornTail {
		t.Fatalf("torn tail not dropped: %d records, %+v", len(recs), st)
	}

	// Open truncates the torn bytes and appends cleanly after them.
	l2, ost, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if ost.TornTailBytes == 0 || ost.NextLSN != 2 {
		t.Fatalf("open after torn write: %+v", ost)
	}
	if _, err := l2.Append(TypeDelete, EncodeDelete("doc")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	recs, st = collect(t, dir, 0)
	if len(recs) != 3 || st.TornTail || recs[2].Type != TypeDelete {
		t.Fatalf("append after truncation: %d records, %+v", len(recs), st)
	}
}

func TestCorruptCRCFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(TypeAdd, EncodeAdd(Doc{ID: "doc", Body: "payload"})); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Flip one byte inside the middle record's body.
	segs, _ := listSegments(errfs.OS, dir)
	path := segs[0].path
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recLen := (len(data) - headerSize) / 3
	data[headerSize+recLen+6] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Replay(dir, 0, func(Record) error { return nil }); err == nil ||
		!strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("corrupt CRC replayed without a checksum error: %v", err)
	}
	// Open scans the final segment too and must refuse it as well.
	if _, _, err := Open(dir, Options{Sync: SyncNone}); err == nil {
		t.Fatal("Open accepted a corrupt final segment")
	}
}

func TestTornMiddleSegmentIsCorruption(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncNone, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(TypeDelete, EncodeDelete("some-document-id")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := listSegments(errfs.OS, dir)
	if len(segs) < 2 {
		t.Fatalf("need multiple segments, got %d", len(segs))
	}
	info, _ := os.Stat(segs[0].path)
	if err := os.Truncate(segs[0].path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 0, func(Record) error { return nil }); err == nil ||
		!strings.Contains(err.Error(), "not the final segment") {
		t.Fatalf("mid-log truncation tolerated: %v", err)
	}
}

func TestSegmentChainGapDetected(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncNone, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(TypeDelete, EncodeDelete("some-document-id")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := listSegments(errfs.OS, dir)
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	if err := os.Remove(segs[1].path); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 0, func(Record) error { return nil }); err == nil ||
		!strings.Contains(err.Error(), "chain gap") {
		t.Fatalf("missing middle segment tolerated: %v", err)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, _, err := Open(dir, Options{Sync: policy, Interval: 5 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if _, err := l.Append(TypeDelete, EncodeDelete("id")); err != nil {
					t.Fatal(err)
				}
			}
			if policy == SyncInterval {
				// Group commit: records reach the kernel per append, so a
				// reader sees them before any fsync happens.
				recs, _ := collect(t, dir, 0)
				if len(recs) != 5 {
					t.Fatalf("interval policy: %d records visible before sync", len(recs))
				}
				// And the ticker must eventually fsync.
				deadline := time.Now().Add(2 * time.Second)
				for l.Stats().Syncs == 0 {
					if time.Now().After(deadline) {
						t.Fatal("interval ticker never synced")
					}
					time.Sleep(time.Millisecond)
				}
			}
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			recs, _ := collect(t, dir, 0)
			if len(recs) != 5 {
				t.Fatalf("%s: %d records after close", policy, len(recs))
			}
			if st := l.Stats(); policy == SyncAlways && st.Syncs < 5 {
				t.Fatalf("always: only %d syncs for 5 appends", st.Syncs)
			}
		})
	}
}

func TestRotateSealsForTruncate(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 4; i++ {
		if _, err := l.Append(TypeDelete, EncodeDelete("id")); err != nil {
			t.Fatal(err)
		}
	}
	// The checkpoint sequence: rotate, then truncate everything below the
	// current LSN — the whole history disappears, the active segment stays.
	lsn := l.NextLSN()
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateBefore(lsn); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Segments != 1 {
		t.Fatalf("after rotate+truncate: %+v", st)
	}
	recs, st := collect(t, dir, lsn)
	if len(recs) != 0 || st.Skipped != 0 {
		t.Fatalf("sealed history survived truncation: %d records, %+v", len(recs), st)
	}
	if _, err := l.Append(TypeDelete, EncodeDelete("id")); err != nil {
		t.Fatal(err)
	}
	if got := l.NextLSN(); got != lsn+1 {
		t.Fatalf("LSN after rotate: %d, want %d", got, lsn+1)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "": SyncInterval, "none": SyncNone, "NONE": SyncNone} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("bogus policy parsed")
	}
}

func TestHeaderNameMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(TypeDelete, EncodeDelete("id")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Rename the segment so its name no longer matches its header.
	if err := os.Rename(filepath.Join(dir, segName(0)), filepath.Join(dir, segName(7))); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 0, func(Record) error { return nil }); err == nil {
		t.Fatal("renamed segment replayed")
	}
	if _, _, err := Open(dir, Options{Sync: SyncNone}); err == nil {
		t.Fatal("renamed segment opened")
	}
}

func TestAbsurdRecordLengthRejected(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(TypeDelete, EncodeDelete("id")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	segs, _ := listSegments(errfs.OS, dir)
	f, err := os.OpenFile(segs[0].path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var frame [4]byte
	binary.LittleEndian.PutUint32(frame[:], maxRecordBytes+1)
	if _, err := f.Write(frame[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Replay(dir, 0, func(Record) error { return nil }); err == nil {
		t.Fatal("absurd record length replayed")
	}
}

// TestTornHeaderFinalSegmentDropped simulates power loss between segment
// creation and its header reaching the disk: the headerless final segment
// is dropped (Replay) and removed (Open), and the log resumes on the
// previous segment.
func TestTornHeaderFinalSegmentDropped(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(TypeDelete, EncodeDelete("id")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Tear the rotated-to segment's header: 5 of its 13 bytes reached disk.
	segs, _ := listSegments(errfs.OS, dir)
	last := segs[len(segs)-1].path
	if err := os.Truncate(last, 5); err != nil {
		t.Fatal(err)
	}

	recs, st := collect(t, dir, 0)
	if len(recs) != 3 || !st.TornTail {
		t.Fatalf("torn-header replay: %d records, %+v", len(recs), st)
	}
	l2, ost, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatalf("torn header not tolerated at open: %v", err)
	}
	defer l2.Close()
	if ost.NextLSN != 3 || ost.TornTailBytes != 5 {
		t.Fatalf("open after torn header: %+v", ost)
	}
	if _, err := os.Stat(last); !os.IsNotExist(err) {
		t.Fatal("headerless segment not removed")
	}
	if lsn, err := l2.Append(TypeDelete, EncodeDelete("id")); err != nil || lsn != 3 {
		t.Fatalf("append after torn header: %d, %v", lsn, err)
	}
	// An empty (zero-byte) final segment is the same crash one instant
	// earlier and must be tolerated identically.
	l2.Close()
	if err := os.WriteFile(filepath.Join(dir, segName(4)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, st = collect(t, dir, 0)
	if len(recs) != 4 || !st.TornTail {
		t.Fatalf("empty-segment replay: %d records, %+v", len(recs), st)
	}
	l3, ost, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatalf("empty final segment not tolerated: %v", err)
	}
	defer l3.Close()
	if ost.NextLSN != 4 {
		t.Fatalf("open after empty segment: %+v", ost)
	}
}

// TestAppendFailurePoisonsLog pins the poisoning contract: once an append
// has failed, every later append fails too — a half-written or unsynced
// record must never be followed by a successfully acknowledged one.
func TestAppendFailurePoisonsLog(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(TypeDelete, EncodeDelete("id")); err != nil {
		t.Fatal(err)
	}
	// Force the next flush/sync to fail by closing the file out from
	// under the log.
	l.f.Close()
	if _, err := l.Append(TypeDelete, EncodeDelete("id")); err == nil {
		t.Fatal("append succeeded on a closed file")
	}
	if _, err := l.Append(TypeDelete, EncodeDelete("id")); err == nil {
		t.Fatal("append succeeded after a failed append (log not poisoned)")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("sync succeeded after poisoning")
	}
}
