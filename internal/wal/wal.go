// Package wal implements the durability subsystem's write-ahead log: an
// append-only, CRC-checksummed redo log of index mutations, segmented into
// sequence-numbered files so fully-checkpointed prefixes can be truncated
// by deleting whole files.
//
// Every mutation of a durable ShardedIndex is appended here as one typed
// record — add, add-tokens, add-batch, add-tokens-batch, delete,
// delete-batch, or a checkpoint barrier — before it is applied in memory,
// so a crashed process recovers by loading the latest snapshot and
// replaying the log tail (see Replay). Records carry monotonically
// increasing log sequence numbers (LSNs); a snapshot is named by the LSN it
// covers, and replay skips everything below it, which is what makes
// recovery idempotent when a crash lands between "snapshot persisted" and
// "log truncated".
//
// On-disk layout (one directory per log):
//
//	wal-<firstLSN as %016d>.log
//	  "FTWL" magic, version byte, firstLSN (8 bytes little-endian)
//	  record*:
//	    bodyLen  uint32 little-endian   (length of type byte + payload)
//	    body     1 type byte + payload
//	    crc      uint32 little-endian   (CRC-32C of body)
//
// A record's LSN is implicit: the segment's firstLSN plus its index within
// the segment. The CRC closes the record, so a write torn by a crash is
// detectable: a tail of the final segment that ends mid-record is dropped
// (and physically truncated on the next Open), while a checksum mismatch
// anywhere — including the final record — is corruption and fails loudly.
// The distinction is deliberate: only provably incomplete bytes are
// forgiven.
//
// Durability is tunable per log (Options.Sync):
//
//	SyncAlways    every acknowledged record survives OS crash. Commit is
//	              two-phase: AppendAsync assigns the LSN and hands the
//	              record to the kernel under the log lock, WaitDurable
//	              parks the caller on a commit waiter that the flusher
//	              goroutine releases after batching one fsync across all
//	              concurrent committers (group commit) — the fsync itself
//	              never runs under the lock.
//	SyncInterval  every record is written to the kernel before the
//	              mutation is acknowledged (surviving process death, e.g.
//	              SIGKILL), and the flusher fsyncs the file every
//	              Interval, bounding loss on OS crash to one interval.
//	SyncNone      records buffer in process and reach the file on rotation,
//	              Sync, or Close; fastest, loses the buffer on any crash.
//
// All file I/O goes through an errfs.FS (Options.FS), so tests inject
// failed fsyncs, torn writes, and whole-filesystem crashes
// deterministically; production uses the errfs.OS passthrough.
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fulltext/internal/errfs"
	"fulltext/internal/telemetry"
)

// Type tags one log record with the mutation it carries. Payload formats
// are defined by the Encode/Decode pairs in record.go.
type Type uint8

const (
	// TypeAdd is one raw-text document (Doc payload).
	TypeAdd Type = 1 + iota
	// TypeAddTokens is one pre-tokenized document (TokenDoc payload).
	TypeAddTokens
	// TypeAddBatch is an all-or-nothing batch of raw-text documents.
	TypeAddBatch
	// TypeAddTokensBatch is an all-or-nothing batch of pre-tokenized
	// documents.
	TypeAddTokensBatch
	// TypeDelete is one document id to tombstone.
	TypeDelete
	// TypeDeleteBatch is a batch of document ids tombstoned as one mutation.
	TypeDeleteBatch
	// TypeCheckpoint is a barrier recording that a snapshot covering every
	// record below its payload LSN has been durably persisted. Replay treats
	// it as a marker, not a mutation.
	TypeCheckpoint
)

// String returns the record-type name used in errors and stats.
func (t Type) String() string {
	switch t {
	case TypeAdd:
		return "add"
	case TypeAddTokens:
		return "add-tokens"
	case TypeAddBatch:
		return "add-batch"
	case TypeAddTokensBatch:
		return "add-tokens-batch"
	case TypeDelete:
		return "delete"
	case TypeDeleteBatch:
		return "delete-batch"
	case TypeCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// SyncPolicy selects when appended records are fsynced (see the package
// comment for the durability each policy buys).
type SyncPolicy int

const (
	// SyncInterval is kernel-write per record, fsync on the flusher's
	// ticker. The default.
	SyncInterval SyncPolicy = iota
	// SyncAlways makes every acknowledged record durable via group commit:
	// committers park on WaitDurable and share one batched fsync.
	SyncAlways
	// SyncNone never fsyncs and buffers records in process.
	SyncNone
)

// String returns the policy name used in flags, stats and BENCH output.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return "interval"
	}
}

// ParseSyncPolicy parses a policy name as accepted by ftserve's -wal-sync.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "", "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval, or none)", s)
}

// Options configures a Log. The zero value is the production default:
// group commit every DefaultInterval, rotation at DefaultSegmentBytes.
type Options struct {
	// Sync is the fsync policy.
	Sync SyncPolicy
	// Interval is the flusher's fsync cadence under SyncInterval.
	// <= 0 uses DefaultInterval.
	Interval time.Duration
	// SegmentBytes rotates the active segment once it exceeds this size.
	// <= 0 uses DefaultSegmentBytes.
	SegmentBytes int64
	// StartLSN is the first LSN assigned when the directory holds no
	// segments. A durable index opening a fresh log over an existing
	// snapshot passes the snapshot's LSN here so new records can never be
	// mistaken for pre-snapshot history.
	StartLSN uint64
	// FS is the filesystem the log lives on. nil uses errfs.OS; tests
	// inject an errfs.Mem to fail fsyncs, tear writes, and crash.
	FS errfs.FS
	// OnDurable, when non-nil, is invoked by the flusher after every
	// successful batched fsync, with no log locks held. The durable index
	// hangs its auto-checkpoint policy here.
	OnDurable func()
}

// Defaults for Options.
const (
	DefaultInterval     = 50 * time.Millisecond
	DefaultSegmentBytes = 16 << 20
)

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = DefaultInterval
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.FS == nil {
		o.FS = errfs.OS
	}
	return o
}

// File-format framing constants.
const (
	fileMagic   = "FTWL"
	fileVersion = 1
	// headerSize is magic + version byte + firstLSN.
	headerSize = len(fileMagic) + 1 + 8
	// maxRecordBytes bounds one record body; larger lengths are treated as
	// corruption rather than attempted allocations.
	maxRecordBytes = 1 << 30
	// bodyChunk is the read granularity for record bodies, so memory is
	// committed only as fast as bytes actually arrive.
	bodyChunk = 1 << 16
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segMeta is one on-disk segment the Log knows about, in LSN order.
type segMeta struct {
	firstLSN uint64
	path     string
}

func segName(firstLSN uint64) string {
	return fmt.Sprintf("wal-%016d.log", firstLSN)
}

// parseSegName extracts the firstLSN from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// waiter is one parked committer: its record's LSN and the channel the
// flusher releases it on (buffered so release never blocks).
type waiter struct {
	lsn uint64
	ch  chan error
}

// Log is an open write-ahead log. All methods are safe for concurrent use;
// appends are serialized, and their on-disk order is their LSN order.
type Log struct {
	mu   sync.Mutex
	dir  string
	opts Options
	fs   errfs.FS

	segs    []segMeta  // all segments, ascending firstLSN; last is active
	f       errfs.File // active segment
	w       *bufio.Writer
	size    int64 // bytes written to the active segment (including header)
	nextLSN uint64

	dirty   bool // bytes handed to the kernel since the last fsync
	syncErr error

	// Group commit: every LSN < durableNext is fsynced; waiters park in
	// LSN order until a batch fsync covers them. syncBusy marks an
	// in-flight off-lock fsync by the flusher — rotation and close wait
	// for it (syncDone) so the fd is never closed under an fsync.
	durableNext uint64
	waiters     []waiter
	flushReq    chan struct{}
	syncBusy    bool
	syncDone    *sync.Cond

	appends      uint64
	syncs        uint64
	groupCommits uint64 // fsyncs that made >= 1 record durable
	groupRecords uint64 // records made durable by those fsyncs
	rotations    uint64
	truncated    uint64 // segments removed by TruncateBefore
	tornDropt    int64  // torn tail bytes truncated at Open
	closed       bool
	stopFlusher  chan struct{}
	flusherDone  chan struct{}

	// Lock-free log position for cheap auto-checkpoint threshold checks:
	// posLSN mirrors nextLSN, posBytes accumulates appended record bytes
	// monotonically (it never resets on truncation).
	posLSN   atomic.Uint64
	posBytes atomic.Int64

	// Telemetry histograms, nil until Instrument: an un-instrumented log
	// pays one nil check per append/sync/rotation and never calls
	// time.Now for them.
	appendH *telemetry.Histogram
	syncH   *telemetry.Histogram
	rotateH *telemetry.Histogram
	batchH  *telemetry.Histogram
}

// Instrument attaches append/sync/rotation latency histograms registered
// with r (a nil registry leaves the log un-instrumented). Call before
// concurrent use: the histogram fields are written without the lock.
// The append histogram covers assigning the LSN and handing the record
// to the kernel; the wait for a batched fsync is not in it (that stall
// is the sync histogram's, observed once per batch, and the batch size
// histogram says how many records each fsync carried).
func (l *Log) Instrument(r *telemetry.Registry) {
	if r == nil {
		return
	}
	l.appendH = r.Histogram("fulltext_wal_append_seconds",
		"WAL record append latency (LSN assignment + write to kernel).", nil)
	l.syncH = r.Histogram("fulltext_wal_sync_seconds",
		"WAL flush+fsync latency.", nil)
	l.rotateH = r.Histogram("fulltext_wal_rotation_seconds",
		"WAL segment rotation latency (seal, fsync, create).", nil)
	l.batchH = r.Histogram("fulltext_wal_group_commit_batch_records",
		"Records made durable per batched fsync (group-commit batch size).",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512})
	r.CounterFunc("fulltext_wal_rotations_total", "WAL segment rotations.",
		func() uint64 { return l.Stats().Rotations })
	r.CounterFunc("fulltext_wal_truncated_segments_total", "Sealed WAL segments deleted by checkpoint truncation.",
		func() uint64 { return l.Stats().TruncatedSegments })
}

// OpenStats reports what Open found in the directory.
type OpenStats struct {
	// Segments is the number of log segments present after opening.
	Segments int
	// NextLSN is the LSN the next appended record will receive.
	NextLSN uint64
	// TornTailBytes is the size of the incomplete final record dropped (and
	// physically truncated) from the last segment, zero when the log ended
	// cleanly.
	TornTailBytes int64
}

// Open opens (creating if necessary) the log in dir and positions it for
// appending. The final segment's tail is validated: an incomplete final
// record — a write torn by a crash — is truncated away and reported in
// OpenStats, while a checksum mismatch is corruption and fails the open.
// Earlier segments are not scanned here; Replay validates them.
func Open(dir string, opts Options) (*Log, OpenStats, error) {
	opts = opts.withDefaults()
	fsys := opts.FS
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, OpenStats{}, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return nil, OpenStats{}, err
	}
	l := &Log{dir: dir, opts: opts, fs: fsys, segs: segs}
	l.syncDone = sync.NewCond(&l.mu)
	var st OpenStats
	for len(l.segs) > 0 {
		last := l.segs[len(l.segs)-1]
		scan, err := scanSegment(fsys, last.path, true)
		if err != nil {
			return nil, OpenStats{}, err
		}
		if !scan.headerOK {
			// The newest segment died before its header reached the disk (a
			// rotation torn by a crash): it carries nothing. Remove it and
			// let the previous segment become the active tail again.
			if err := fsys.Remove(last.path); err != nil {
				return nil, OpenStats{}, fmt.Errorf("wal: removing headerless %s: %w", last.path, err)
			}
			l.tornDropt += scan.tornBytes
			st.TornTailBytes += scan.tornBytes
			l.segs = l.segs[:len(l.segs)-1]
			continue
		}
		if scan.firstLSN != last.firstLSN {
			return nil, OpenStats{}, fmt.Errorf("wal: %s header claims first LSN %d", last.path, scan.firstLSN)
		}
		if scan.tornBytes > 0 {
			if err := fsys.Truncate(last.path, scan.validEnd); err != nil {
				return nil, OpenStats{}, fmt.Errorf("wal: truncating torn tail of %s: %w", last.path, err)
			}
			l.tornDropt += scan.tornBytes
			st.TornTailBytes += scan.tornBytes
		}
		f, err := fsys.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, OpenStats{}, fmt.Errorf("wal: reopening %s: %w", last.path, err)
		}
		l.f = f
		l.w = bufio.NewWriter(f)
		l.size = scan.validEnd
		l.nextLSN = scan.firstLSN + uint64(scan.records)
		break
	}
	if l.f == nil {
		if err := l.newSegmentLocked(opts.StartLSN); err != nil {
			return nil, OpenStats{}, err
		}
	} else if l.nextLSN < opts.StartLSN {
		// The log is behind the caller's snapshot (segments were lost or
		// removed out of band). Appending here would mint LSNs that a
		// future replay-from-snapshot must skip, silently dropping real
		// mutations — rotate so numbering restarts at the snapshot.
		if err := l.rotateLocked(opts.StartLSN); err != nil {
			return nil, OpenStats{}, err
		}
	}
	l.durableNext = l.nextLSN
	l.posLSN.Store(l.nextLSN)
	if opts.Sync == SyncAlways || opts.Sync == SyncInterval {
		l.flushReq = make(chan struct{}, 1)
		l.stopFlusher = make(chan struct{})
		l.flusherDone = make(chan struct{})
		go l.flushLoop()
	}
	st.Segments = len(l.segs)
	st.NextLSN = l.nextLSN
	return l, st, nil
}

// listSegments enumerates dir's wal segments in ascending LSN order.
func listSegments(fsys errfs.FS, dir string) ([]segMeta, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading %s: %w", dir, err)
	}
	var segs []segMeta
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if lsn, ok := parseSegName(e.Name()); ok {
			segs = append(segs, segMeta{firstLSN: lsn, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })
	return segs, nil
}

// newSegmentLocked creates and activates a fresh segment starting at
// firstLSN, fsyncing the directory so the new file's entry survives power
// loss (records fsynced into a file whose dirent was never committed
// would vanish with it). Callers hold l.mu (or own the log exclusively
// during Open).
func (l *Log) newSegmentLocked(firstLSN uint64) error {
	path := filepath.Join(l.dir, segName(firstLSN))
	f, err := l.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	w := bufio.NewWriter(f)
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, fileMagic...)
	hdr = append(hdr, fileVersion)
	hdr = binary.LittleEndian.AppendUint64(hdr, firstLSN)
	if _, err := w.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	if err := syncDir(l.fs, l.dir); err != nil {
		f.Close()
		return err
	}
	l.f, l.w = f, w
	l.size = int64(headerSize)
	l.nextLSN = firstLSN
	l.posLSN.Store(firstLSN)
	l.segs = append(l.segs, segMeta{firstLSN: firstLSN, path: path})
	return nil
}

// syncDir fsyncs a directory, committing entries for files created or
// removed in it.
func syncDir(fsys errfs.FS, dir string) error {
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("wal: syncing %s: %w", dir, err)
	}
	return nil
}

// rotateLocked finishes the active segment (flushing and fsyncing it — a
// sealed segment is always durable regardless of policy) and starts a new
// one at firstLSN. It first waits out any in-flight flusher fsync: the fd
// must not be closed under one.
func (l *Log) rotateLocked(firstLSN uint64) error {
	l.waitSyncIdleLocked()
	var start time.Time
	if l.rotateH != nil {
		start = time.Now()
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flushing segment: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing segment: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: closing segment: %w", err)
	}
	l.dirty = false
	l.markDurableLocked(l.nextLSN)
	l.rotations++
	if err := l.newSegmentLocked(firstLSN); err != nil {
		return err
	}
	if l.rotateH != nil {
		l.rotateH.ObserveSince(start)
	}
	return nil
}

// waitSyncIdleLocked blocks (releasing l.mu while parked) until no
// flusher fsync is in flight. Callers hold l.mu.
func (l *Log) waitSyncIdleLocked() {
	for l.syncBusy {
		l.syncDone.Wait()
	}
}

// markDurableLocked advances the durability horizon to next (every LSN <
// next fsynced), releasing covered waiters, and accounts one group
// commit when the horizon actually moved. Callers hold l.mu and have
// just completed a successful fsync covering those records.
func (l *Log) markDurableLocked(next uint64) {
	if next > l.durableNext {
		batch := next - l.durableNext
		l.durableNext = next
		l.groupCommits++
		l.groupRecords += batch
		if l.batchH != nil {
			l.batchH.Observe(float64(batch))
		}
	}
	if len(l.waiters) == 0 {
		return
	}
	kept := l.waiters[:0]
	for _, w := range l.waiters {
		if w.lsn < l.durableNext {
			w.ch <- nil
		} else {
			kept = append(kept, w)
		}
	}
	l.waiters = kept
}

// failWaitersLocked releases every parked committer with err. Callers
// hold l.mu and have poisoned the log.
func (l *Log) failWaitersLocked(err error) {
	for _, w := range l.waiters {
		w.ch <- err
	}
	l.waiters = l.waiters[:0]
}

// fail poisons the log: once an I/O error has (possibly) left a partial
// record or an unsynced tail behind, no further append may succeed — a
// record written after the damage could replay while its predecessor did
// not, reordering history. The caller crashes into recovery instead.
// Callers hold l.mu.
func (l *Log) fail(err error) error {
	if l.syncErr == nil {
		l.syncErr = err
	}
	return err
}

// Append writes one record and returns its LSN, waiting out the policy's
// durability: it is AppendAsync followed by WaitDurable. Any I/O failure
// poisons the log permanently (see fail).
func (l *Log) Append(t Type, payload []byte) (uint64, error) {
	lsn, err := l.AppendAsync(t, payload)
	if err != nil {
		return 0, err
	}
	if err := l.WaitDurable(lsn); err != nil {
		return 0, err
	}
	return lsn, nil
}

// AppendAsync assigns the next LSN and writes one record as far as the
// kernel (under SyncAlways and SyncInterval; SyncNone buffers in
// process), without waiting for any fsync. The on-disk record order
// always matches LSN order. An error means the record was not committed
// and the log is poisoned; a nil error means the record is sequenced and
// WaitDurable(lsn) will report when (or whether) it became durable.
func (l *Log) AppendAsync(t Type, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var start time.Time
	if l.appendH != nil {
		start = time.Now()
	}
	if l.closed {
		return 0, fmt.Errorf("wal: append on closed log")
	}
	if l.syncErr != nil {
		return 0, l.syncErr
	}
	if len(payload)+1 > maxRecordBytes {
		return 0, fmt.Errorf("wal: record payload of %d bytes exceeds limit", len(payload))
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(l.nextLSN); err != nil {
			return 0, l.fail(err)
		}
	}
	lsn := l.nextLSN
	body := make([]byte, 0, 1+len(payload))
	body = append(body, byte(t))
	body = append(body, payload...)
	var frame [4]byte
	binary.LittleEndian.PutUint32(frame[:], uint32(len(body)))
	if _, err := l.w.Write(frame[:]); err != nil {
		return 0, l.fail(fmt.Errorf("wal: appending record: %w", err))
	}
	if _, err := l.w.Write(body); err != nil {
		return 0, l.fail(fmt.Errorf("wal: appending record: %w", err))
	}
	binary.LittleEndian.PutUint32(frame[:], crc32.Checksum(body, crcTable))
	if _, err := l.w.Write(frame[:]); err != nil {
		return 0, l.fail(fmt.Errorf("wal: appending record: %w", err))
	}
	l.size += int64(8 + len(body))
	l.nextLSN++
	l.appends++
	l.posLSN.Store(l.nextLSN)
	l.posBytes.Add(int64(8 + len(body)))
	switch l.opts.Sync {
	case SyncAlways, SyncInterval:
		// To the kernel now — the record survives process death and is
		// visible to the flusher's next batch fsync.
		if err := l.w.Flush(); err != nil {
			return 0, l.fail(fmt.Errorf("wal: flushing record: %w", err))
		}
		l.dirty = true
	case SyncNone:
		l.dirty = true
	}
	if l.appendH != nil {
		l.appendH.ObserveSince(start)
	}
	return lsn, nil
}

// WaitDurable blocks until the record at lsn is fsynced, joining the
// flusher's current group-commit batch. Under SyncInterval and SyncNone
// it returns immediately: those policies acknowledge before the fsync by
// design. A non-nil error means the record's durability is unknown and
// the log is poisoned; the caller must treat the mutation as failed.
func (l *Log) WaitDurable(lsn uint64) error {
	l.mu.Lock()
	if l.opts.Sync != SyncAlways || lsn < l.durableNext {
		l.mu.Unlock()
		return nil
	}
	if l.syncErr != nil {
		err := l.syncErr
		l.mu.Unlock()
		return err
	}
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("wal: wait on closed log")
	}
	w := waiter{lsn: lsn, ch: make(chan error, 1)}
	l.waiters = append(l.waiters, w)
	l.mu.Unlock()
	select {
	case l.flushReq <- struct{}{}:
	default: // a wakeup is already pending; the flusher will see us
	}
	return <-w.ch
}

// flushLoop is the flusher goroutine: it serializes every batched fsync.
// Under SyncAlways it is woken by parked committers; under SyncInterval
// by the ticker. Either way the fsync itself runs with l.mu released, so
// concurrent appends never wait on the disk.
func (l *Log) flushLoop() {
	defer close(l.flusherDone)
	var tickC <-chan time.Time
	if l.opts.Sync == SyncInterval {
		t := time.NewTicker(l.opts.Interval)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case <-l.stopFlusher:
			return
		case <-l.flushReq:
		case <-tickC:
		}
		l.commitBatch()
	}
}

// commitBatch runs one group commit: flush buffered records, fsync the
// active segment once off the lock, then advance the durability horizon
// and release every waiter the fsync covered. Records appended while the
// fsync was in flight stay pending and trigger the next batch.
func (l *Log) commitBatch() {
	l.mu.Lock()
	if l.closed || l.syncErr != nil {
		if err := l.syncErr; err != nil {
			l.failWaitersLocked(err)
		}
		l.mu.Unlock()
		return
	}
	if !l.dirty && len(l.waiters) == 0 {
		l.mu.Unlock()
		return
	}
	var start time.Time
	if l.syncH != nil {
		start = time.Now()
	}
	if err := l.w.Flush(); err != nil {
		l.failWaitersLocked(l.fail(fmt.Errorf("wal: flushing log: %w", err)))
		l.mu.Unlock()
		return
	}
	// Everything below target is in a sealed (already durable) segment or
	// flushed to the active file the fsync below covers. Rotation cannot
	// swap the fd out from under us: rotateLocked waits on syncBusy.
	target := l.nextLSN
	sizeAtFlush := l.size
	f := l.f
	l.syncBusy = true
	l.mu.Unlock()

	err := f.Sync() // off the lock: appends proceed while the disk works

	l.mu.Lock()
	l.syncBusy = false
	l.syncDone.Broadcast()
	if err != nil {
		l.failWaitersLocked(l.fail(fmt.Errorf("wal: syncing log: %w", err)))
		l.mu.Unlock()
		return
	}
	l.syncs++
	if l.syncH != nil {
		l.syncH.ObserveSince(start)
	}
	if l.size == sizeAtFlush {
		l.dirty = false // nothing arrived during the fsync
	}
	l.markDurableLocked(target)
	more := len(l.waiters) > 0
	l.mu.Unlock()
	if l.opts.OnDurable != nil {
		l.opts.OnDurable()
	}
	if more {
		select {
		case l.flushReq <- struct{}{}:
		default:
		}
	}
}

// syncLocked flushes buffered records and fsyncs the active segment,
// advancing the durability horizon. Callers hold l.mu with no flusher
// fsync in flight.
func (l *Log) syncLocked() error {
	var start time.Time
	if l.syncH != nil {
		start = time.Now()
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flushing log: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing log: %w", err)
	}
	l.dirty = false
	l.syncs++
	l.markDurableLocked(l.nextLSN)
	if l.syncH != nil {
		l.syncH.ObserveSince(start)
	}
	return nil
}

// Sync flushes and fsyncs the active segment now, under any policy. A
// failure poisons the log (see fail).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: sync on closed log")
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	l.waitSyncIdleLocked()
	if l.syncErr != nil { // the fsync we waited out may have poisoned the log
		return l.syncErr
	}
	if err := l.syncLocked(); err != nil {
		l.failWaitersLocked(l.fail(err))
		return l.syncErr
	}
	return nil
}

// Rotate seals the active segment and starts a new one at the current LSN,
// so a following TruncateBefore(NextLSN()) can delete every sealed segment.
// A checkpoint calls this to leave the log holding only post-snapshot
// records. Rotating an empty segment is a no-op.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: rotate on closed log")
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	if l.size == int64(headerSize) {
		return nil
	}
	if err := l.rotateLocked(l.nextLSN); err != nil {
		l.failWaitersLocked(l.fail(err))
		return l.syncErr
	}
	return nil
}

// TruncateBefore deletes sealed segments every record of which has LSN
// below lsn — segments fully covered by a persisted snapshot. The active
// segment is never deleted. Deleting files is not atomic with the snapshot
// that justified it, and does not need to be: a crash between the two
// leaves extra segments whose records replay as skips.
func (l *Log) TruncateBefore(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: truncate on closed log")
	}
	kept := l.segs[:0]
	for i, s := range l.segs {
		// A segment's records end where the next segment begins; the active
		// (last) segment is always kept.
		if i+1 < len(l.segs) && l.segs[i+1].firstLSN <= lsn {
			if err := l.fs.Remove(s.path); err != nil {
				return fmt.Errorf("wal: removing %s: %w", s.path, err)
			}
			l.truncated++
			continue
		}
		kept = append(kept, s)
	}
	l.segs = append([]segMeta(nil), kept...)
	return nil
}

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Position returns the next LSN and the total bytes appended over the
// log's lifetime, without taking the log lock — cheap enough to call
// after every mutation (the auto-checkpoint threshold check does).
func (l *Log) Position() (nextLSN uint64, appendedBytes int64) {
	return l.posLSN.Load(), l.posBytes.Load()
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Policy returns the log's sync policy.
func (l *Log) Policy() SyncPolicy { return l.opts.Sync }

// Stats is a snapshot of the log's position and activity counters.
type Stats struct {
	NextLSN uint64
	// DurableLSN is the LSN one past the newest fsynced record.
	DurableLSN uint64
	Segments   int
	// ActiveBytes is the size of the active segment, header included.
	ActiveBytes int64
	Appends     uint64
	// Syncs counts fsyncs of the active segment: batched group commits
	// under SyncAlways, ticker flushes under SyncInterval, explicit
	// Sync/Close/rotation flushes otherwise.
	Syncs uint64
	// GroupCommits counts fsyncs that made at least one record durable;
	// GroupCommitRecords is the records they carried, so
	// GroupCommitRecords/GroupCommits is the mean batch size.
	GroupCommits       uint64
	GroupCommitRecords uint64
	Rotations          uint64
	// TruncatedSegments counts sealed segments deleted by TruncateBefore.
	TruncatedSegments uint64
	// TornTailBytes is the incomplete final-record tail truncated at Open.
	TornTailBytes int64
	Policy        SyncPolicy
}

// Stats returns a snapshot of the log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		NextLSN:            l.nextLSN,
		DurableLSN:         l.durableNext,
		Segments:           len(l.segs),
		ActiveBytes:        l.size,
		Appends:            l.appends,
		Syncs:              l.syncs,
		GroupCommits:       l.groupCommits,
		GroupCommitRecords: l.groupRecords,
		Rotations:          l.rotations,
		TruncatedSegments:  l.truncated,
		TornTailBytes:      l.tornDropt,
		Policy:             l.opts.Sync,
	}
}

// Close flushes, fsyncs and closes the log. Further appends fail; any
// committer still parked on WaitDurable is released by the final fsync
// (or failed by its error).
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.waitSyncIdleLocked()
	l.closed = true
	var err error
	if l.syncErr != nil {
		err = l.syncErr
		l.failWaitersLocked(err)
	} else if err = l.syncLocked(); err != nil {
		l.failWaitersLocked(l.fail(err))
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	stop := l.stopFlusher
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.flusherDone
	}
	return err
}

// segmentScan is the result of reading one segment file front to back.
type segmentScan struct {
	firstLSN uint64
	records  int
	// headerOK reports the 13-byte header was complete; false means the
	// segment was created but died before its header reached the disk (a
	// rotation torn by a crash) and carries no information at all.
	headerOK bool
	// validEnd is the offset just past the last complete, checksum-valid
	// record; tornBytes is whatever followed it (only ever non-zero when
	// scanning tolerates a torn tail).
	validEnd  int64
	tornBytes int64
}

// errTorn is an internal marker: the segment ends with an incomplete
// record. Callers translate it into either tolerated truncation (last
// segment) or a corruption error (any other segment).
var errTorn = fmt.Errorf("wal: segment ends mid-record")

// scanSegment reads a whole segment, validating every record's checksum.
// With tolerateTorn (the final segment of a log), an incomplete final
// record is reported via tornBytes instead of an error; a checksum mismatch
// is always an error.
func scanSegment(fsys errfs.FS, path string, tolerateTorn bool) (segmentScan, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return segmentScan{}, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return segmentScan{}, fmt.Errorf("wal: stat %s: %w", path, err)
	}
	br := bufio.NewReader(f)
	scan, err := readSegment(br, path, nil)
	if err == errTorn {
		if !tolerateTorn {
			return segmentScan{}, fmt.Errorf("wal: %s truncated mid-record but is not the final segment", path)
		}
		scan.tornBytes = size - scan.validEnd
		return scan, nil
	}
	return scan, err
}

// readSegment reads records from a positioned reader, invoking fn (when
// non-nil) with each record's type and payload. It returns errTorn when the
// stream ends inside a record.
func readSegment(br *bufio.Reader, path string, fn func(idx int, t Type, payload []byte) error) (segmentScan, error) {
	// An incomplete header is torn, not corrupt: a crash between segment
	// creation and the header write leaves exactly this. Wrong bytes that
	// are fully present are corruption as everywhere else.
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return segmentScan{}, errTorn
		}
		return segmentScan{}, fmt.Errorf("wal: %s: reading header: %w", path, err)
	}
	if string(magic) != fileMagic {
		return segmentScan{}, fmt.Errorf("wal: %s: bad magic", path)
	}
	version, err := br.ReadByte()
	if err != nil {
		return segmentScan{}, errTorn
	}
	if version != fileVersion {
		return segmentScan{}, fmt.Errorf("wal: %s: unsupported version %d", path, version)
	}
	var lsnBuf [8]byte
	if _, err := io.ReadFull(br, lsnBuf[:]); err != nil {
		return segmentScan{}, errTorn
	}
	scan := segmentScan{firstLSN: binary.LittleEndian.Uint64(lsnBuf[:]), validEnd: int64(headerSize), headerOK: true}
	var frame [4]byte
	for {
		if _, err := io.ReadFull(br, frame[:]); err == io.EOF {
			return scan, nil // clean end at a record boundary
		} else if err != nil {
			return scan, errTorn
		}
		bodyLen := binary.LittleEndian.Uint32(frame[:])
		if bodyLen == 0 || bodyLen > maxRecordBytes {
			return scan, fmt.Errorf("wal: %s: record %d declares %d bytes", path, scan.records, bodyLen)
		}
		// The declared length is untrusted until the body is actually read:
		// a corrupt prefix claiming a gigabyte must fail at the file's true
		// end, not allocate the claim, so the body grows in bounded chunks.
		initial := bodyLen
		if initial > bodyChunk {
			initial = bodyChunk
		}
		body := make([]byte, 0, initial)
		torn := false
		for uint32(len(body)) < bodyLen {
			chunk := bodyLen - uint32(len(body))
			if chunk > bodyChunk {
				chunk = bodyChunk
			}
			off := len(body)
			body = append(body, make([]byte, chunk)...)
			if _, err := io.ReadFull(br, body[off:]); err != nil {
				torn = true
				break
			}
		}
		if torn {
			return scan, errTorn
		}
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			return scan, errTorn
		}
		if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(frame[:]); got != want {
			return scan, fmt.Errorf("wal: %s: record %d (LSN %d) checksum mismatch (%08x != %08x)",
				path, scan.records, scan.firstLSN+uint64(scan.records), got, want)
		}
		if fn != nil {
			if err := fn(scan.records, Type(body[0]), body[1:]); err != nil {
				return scan, err
			}
		}
		scan.records++
		scan.validEnd += int64(8 + len(body))
	}
}
