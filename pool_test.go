package fulltext

import (
	"fmt"
	"testing"
	"time"

	"fulltext/internal/segment"
)

// poolPolicy drives every real merge onto the background pool with the
// given worker bound: the delta-count trigger fires after one extra delta,
// the base-ratio trigger is effectively off (so tests control exactly
// which trigger fires), and the tombstone trigger fires on any dead doc.
func poolPolicy(workers int) segment.Policy {
	return segment.Policy{
		MaxDeltas:            1,
		BaseRatio:            1000,
		TombstoneRatio:       0.001,
		BackgroundMinDocs:    1,
		MaxBackgroundWorkers: workers,
	}
}

// buildShardTargets builds a sharded index where each shard holds exactly
// docsPerShard base documents with test-controlled ids, returning the ids
// per shard.
func buildShardTargets(t *testing.T, shards, docsPerShard int) (*ShardedIndex, [][]string) {
	t.Helper()
	ids := make([][]string, shards)
	sb := NewShardedBuilder(shards)
	for si := 0; si < shards; si++ {
		ids[si] = idsForShard(t, shards, si, docsPerShard)
		for _, id := range ids[si] {
			if err := sb.Add(id, "alpha beta gamma needle"); err != nil {
				t.Fatal(err)
			}
		}
	}
	return sb.Build(), ids
}

// waitShardState polls SegmentStats until cond holds or the deadline hits.
func waitShardState(t *testing.T, s *ShardedIndex, what string, cond func(SegmentStats) bool) SegmentStats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.SegmentStats()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; stats %+v", what, st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBackgroundMergePoolBounded pins the pool contract: with one worker
// slot, a second and third background-eligible shard queue instead of
// spawning their own goroutines, and the queue drains through the single
// slot once it frees.
func TestBackgroundMergePoolBounded(t *testing.T) {
	const shards = 3
	s, _ := buildShardTargets(t, shards, 4)
	gate := make(chan struct{})
	s.bgHook = func() { <-gate } // blocks each worker between merge and swap
	s.SetMergePolicy(poolPolicy(1))

	// Two extra deltas per shard trip the delta-count trigger everywhere.
	for si := 0; si < shards; si++ {
		for _, id := range idsForShard(t, shards, si, 8)[4:6] {
			if err := s.AddTokens(id, []string{"delta"}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Scheduling is synchronous under the mutation lock: exactly one shard
	// got the slot, the others must be queued, not running.
	st := s.SegmentStats()
	if st.InFlightMerges != 1 || st.QueuedMerges != 2 {
		t.Fatalf("pool of 1: %d in flight, %d queued", st.InFlightMerges, st.QueuedMerges)
	}
	if st.MergeWorkers != 1 {
		t.Fatalf("MergeWorkers = %d, want 1", st.MergeWorkers)
	}
	running, queued := 0, 0
	for _, ss := range st.Shards {
		if ss.MergeRunning {
			running++
		}
		if ss.MergeQueued {
			queued++
		}
	}
	if running != 1 || queued != 2 {
		t.Fatalf("per-shard states: %d running, %d queued; %+v", running, queued, st.Shards)
	}

	close(gate) // release the slot; the queue drains through it
	s.WaitMerges()
	st = waitShardState(t, s, "queue drain", func(st SegmentStats) bool {
		return st.InFlightMerges == 0 && st.QueuedMerges == 0
	})
	if st.BackgroundMerges < shards {
		t.Fatalf("only %d background merges after drain, want >= %d", st.BackgroundMerges, shards)
	}
	for si, ss := range st.Shards {
		if ss.Deltas > 1 {
			t.Fatalf("shard %d still has %d deltas after drain", si, ss.Deltas)
		}
	}
}

// TestMergePriorityTakesLargestTombstoneMass pins the queue ordering: when
// multiple shards wait for the single pool slot, the one with the most
// reclaimable (tombstoned) documents is compacted first, and the chosen
// priority is visible in SegmentStats.
func TestMergePriorityTakesLargestTombstoneMass(t *testing.T) {
	const shards = 3
	s, ids := buildShardTargets(t, shards, 8)
	gate := make(chan struct{})
	s.bgHook = func() { <-gate }
	s.SetMergePolicy(poolPolicy(1))

	// Occupy the only slot with a delta merge on shard 0.
	for _, id := range idsForShard(t, shards, 0, 10)[8:10] {
		if err := s.AddTokens(id, []string{"delta"}); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.SegmentStats(); st.InFlightMerges != 1 || !st.Shards[0].MergeRunning {
		t.Fatalf("shard 0 did not take the slot: %+v", st)
	}
	// Queue tombstone compactions with different reclaimable mass: shard 1
	// loses one document, shard 2 loses three.
	s.Delete(ids[1][0])
	for _, id := range ids[2][:3] {
		s.Delete(id)
	}
	st := s.SegmentStats()
	if !st.Shards[1].MergeQueued || !st.Shards[2].MergeQueued {
		t.Fatalf("tombstoned shards not queued: %+v", st.Shards)
	}
	if st.Shards[1].MergePriority != 1 || st.Shards[2].MergePriority != 3 {
		t.Fatalf("priorities: shard1 %d (want 1), shard2 %d (want 3)",
			st.Shards[1].MergePriority, st.Shards[2].MergePriority)
	}

	// Free the slot once: the scheduler must hand it to shard 2 (mass 3)
	// ahead of shard 1 (mass 1) even though shard 1 queued first.
	gate <- struct{}{}
	st = waitShardState(t, s, "shard 2 to win the slot", func(st SegmentStats) bool {
		return st.Shards[2].MergeRunning
	})
	if !st.Shards[1].MergeQueued {
		t.Fatalf("shard 1 should still be queued while shard 2 merges: %+v", st.Shards)
	}

	close(gate)
	s.WaitMerges()
	st = s.SegmentStats()
	for si, ss := range st.Shards {
		if ss.DeadDocs != 0 {
			t.Fatalf("shard %d kept %d tombstones after compaction", si, ss.DeadDocs)
		}
	}
	// The compaction order must not have changed what queries see.
	live := make([][2]string, 0, 3*8)
	for si := 0; si < shards; si++ {
		for _, id := range ids[si] {
			live = append(live, [2]string{id, "alpha beta gamma needle"})
		}
	}
	live = removeDoc(live, ids[1][0])
	for _, id := range ids[2][:3] {
		live = removeDoc(live, id)
	}
	for _, extra := range [][]string{idsForShard(t, shards, 0, 10)[8:10]} {
		for _, id := range extra {
			live = append(live, [2]string{id, "delta"})
		}
	}
	ref := NewShardedBuilder(shards)
	for _, d := range live {
		if err := ref.Add(d[0], d[1]); err != nil {
			t.Fatal(err)
		}
	}
	_ = ref // ordinals differ from the mutated index; compare counts only
	if got := s.Docs(); got != len(live) {
		t.Fatalf("%d live docs after pooled merges, want %d", got, len(live))
	}
}

// TestPoolAllowsParallelWorkers verifies the bound is a bound, not a
// serializer: with two slots, two shards merge concurrently.
func TestPoolAllowsParallelWorkers(t *testing.T) {
	const shards = 3
	s, _ := buildShardTargets(t, shards, 4)
	gate := make(chan struct{})
	s.bgHook = func() { <-gate }
	s.SetMergePolicy(poolPolicy(2))
	for si := 0; si < shards; si++ {
		for _, id := range idsForShard(t, shards, si, 8)[4:6] {
			if err := s.AddTokens(id, []string{"delta"}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st := s.SegmentStats(); st.InFlightMerges != 2 || st.QueuedMerges != 1 {
		t.Fatalf("pool of 2: %d in flight, %d queued", st.InFlightMerges, st.QueuedMerges)
	}
	close(gate)
	s.WaitMerges()
	if st := s.SegmentStats(); st.InFlightMerges != 0 || st.QueuedMerges != 0 {
		t.Fatalf("pool did not drain: %+v", st)
	}
}

func TestDeleteBatchEquivalence(t *testing.T) {
	const shards = 3
	docs := segCorpus(40)
	sb := NewShardedBuilder(shards)
	for _, d := range docs {
		if err := sb.Add(d[0], d[1]); err != nil {
			t.Fatal(err)
		}
	}
	s := sb.Build()
	ids := []string{docs[1][0], docs[7][0], docs[20][0], docs[33][0]}
	n, err := s.DeleteBatch(ids)
	if err != nil || n != len(ids) {
		t.Fatalf("DeleteBatch = %d, %v; want %d", n, err, len(ids))
	}
	live := append([][2]string(nil), docs...)
	for _, id := range ids {
		live = removeDoc(live, id)
	}
	assertSameResults(t, "delete-batch", s, rebuildLive(t, shards, live))
	// The batch rolled statistics exactly once per container invariant:
	// deleting the same ids again is a full miss and a no-op.
	n, err = s.DeleteBatch(ids)
	if err != nil || n != 0 {
		t.Fatalf("re-delete = %d, %v; want 0", n, err)
	}
}

func TestDeleteBatchSkipsMissesAndDuplicates(t *testing.T) {
	sb := NewShardedBuilder(2)
	for _, id := range []string{"a", "b", "c"} {
		if err := sb.Add(id, "alpha beta"); err != nil {
			t.Fatal(err)
		}
	}
	s := sb.Build()
	n, err := s.DeleteBatch([]string{"a", "ghost", "a", "c", "c"})
	if err != nil || n != 2 {
		t.Fatalf("DeleteBatch = %d, %v; want 2", n, err)
	}
	if s.Docs() != 1 {
		t.Fatalf("%d docs left, want 1", s.Docs())
	}
}

// TestDeleteBatchZeroHitsIsNoOp pins that an all-miss batch does not bump
// the build generation (observable through the query cache surviving).
func TestDeleteBatchZeroHitsIsNoOp(t *testing.T) {
	sb := NewShardedBuilder(2)
	if err := sb.Add("a", "alpha"); err != nil {
		t.Fatal(err)
	}
	s := sb.Build()
	q := MustParse(BOOL, `'alpha'`)
	if _, err := s.Search(q); err != nil { // populate the cache
		t.Fatal(err)
	}
	if n, err := s.DeleteBatch([]string{"ghost", "phantom"}); err != nil || n != 0 {
		t.Fatalf("DeleteBatch = %d, %v; want 0", n, err)
	}
	if _, err := s.Search(q); err != nil {
		t.Fatal(err)
	}
	if cs := s.CacheStats(); cs.Hits != 1 {
		t.Fatalf("all-miss DeleteBatch purged the cache: %+v", cs)
	}
	// And a batch with hits does bump it.
	if n, err := s.DeleteBatch([]string{"a"}); err != nil || n != 1 {
		t.Fatalf("DeleteBatch = %d, %v; want 1", n, err)
	}
	if _, err := s.Search(q); err != nil {
		t.Fatal(err)
	}
	if cs := s.CacheStats(); cs.Hits != 1 {
		t.Fatalf("hit DeleteBatch did not invalidate the cache: %+v", cs)
	}
}

// TestDeleteBatchSingleGenerationBump asserts the one-mutation contract
// directly: a 10-document batch moves the generation once, where 10 single
// deletes move it 10 times.
func TestDeleteBatchSingleGenerationBump(t *testing.T) {
	build := func() (*ShardedIndex, []string) {
		sb := NewShardedBuilder(2)
		ids := make([]string, 10)
		for i := range ids {
			ids[i] = fmt.Sprintf("doc%d", i)
			if err := sb.Add(ids[i], "alpha beta gamma"); err != nil {
				t.Fatal(err)
			}
		}
		return sb.Build(), ids
	}
	// Generations come from one process-global monotone counter, and this
	// test is the only mutator while it runs, so the generation delta is
	// exactly the number of mutations the index observed.
	batched, ids := build()
	genBefore := batched.gen
	if _, err := batched.DeleteBatch(ids); err != nil {
		t.Fatal(err)
	}
	if got := batched.gen - genBefore; got != 1 {
		t.Fatalf("DeleteBatch consumed %d generations, want 1", got)
	}
	singles, ids2 := build()
	genBefore = singles.gen
	for _, id := range ids2 {
		singles.Delete(id)
	}
	if got := singles.gen - genBefore; got != 10 {
		t.Fatalf("10 single Deletes consumed %d generations, want 10", got)
	}
}
