package fulltext

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"fulltext/internal/errfs"
	"fulltext/internal/wal"
)

// memDurableOpts is the fault-injection default: synchronous durability
// (every acknowledged mutation fsynced, via group commit) on an in-memory
// filesystem whose fsyncs the test controls.
func memDurableOpts(shards int, m *errfs.Mem) DurableOptions {
	return DurableOptions{
		Shards:          shards,
		Sync:            wal.SyncAlways,
		WALSegmentBytes: 1 << 12,
		FS:              m,
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDurableConcurrentAddsShareFsyncs is the acceptance criterion for
// group commit at the index level: N concurrent Adds under SyncAlways —
// each one individually guaranteed durable on return — complete with
// fewer than N fsyncs, because the commit wait happens off the write lock
// and parked committers share the flusher's batches.
func TestDurableConcurrentAddsShareFsyncs(t *testing.T) {
	m := errfs.NewMem()
	opts := memDurableOpts(2, m)
	opts.WALSegmentBytes = 0 // default size: no rotation fsyncs mid-test
	s, err := OpenDurable("data", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m.SyncDelay(2 * time.Millisecond)
	const n = 24
	base := m.SyncCalls()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Add(fmt.Sprintf("doc%02d", i), "alpha beta gamma")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	syncs := m.SyncCalls() - base
	if syncs >= n {
		t.Fatalf("%d concurrent durable adds took %d fsyncs; group commit should need fewer", n, syncs)
	}
	ws := s.WALStats()
	if ws.DurableLSN != n || ws.GroupCommitRecords != n {
		t.Fatalf("durable=%d groupRecords=%d after %d adds", ws.DurableLSN, ws.GroupCommitRecords, n)
	}
	t.Logf("%d adds, %d fsyncs, %d group commits", n, syncs, ws.GroupCommits)
}

// TestCheckpointCrashAfterCommitFinishesCleanupAtOpen is the regression
// test for the checkpoint crash window: a crash after the snapshot rename
// (the commit point) but before log truncation must leave a directory the
// next open fully repairs — newest snapshot loaded, the stale records
// below it skipped, the old snapshot and sealed log history removed by
// open itself, results byte-identical.
func TestCheckpointCrashAfterCommitFinishesCleanupAtOpen(t *testing.T) {
	m := errfs.NewMem()
	docs := segCorpus(20)
	s, err := OpenDurable("data", memDurableOpts(2, m))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs[:10] {
		if err := s.Add(d[0], d[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Checkpoint(""); err != nil {
		t.Fatal(err)
	}
	for _, d := range docs[10:] {
		if err := s.Add(d[0], d[1]); err != nil {
			t.Fatal(err)
		}
	}
	// Crash the filesystem the instant the snapshot rename is durable.
	s.ckptHook = func(phase string) {
		if phase == "committed" {
			m.Crash()
		}
	}
	if _, err := s.Checkpoint(""); err == nil {
		t.Fatal("checkpoint across a filesystem crash reported success")
	}
	s.Close() // stale handles everywhere; only stops the goroutines

	re, err := OpenDurable("data", memDurableOpts(2, m))
	if err != nil {
		t.Fatalf("reopening after mid-checkpoint crash: %v", err)
	}
	defer re.Close()
	rec := re.WALStats().Recovery
	if rec.SnapshotLSN != 21 { // 20 adds + 1 checkpoint barrier
		t.Fatalf("recovered from snapshot LSN %d, want the crashed checkpoint's 21", rec.SnapshotLSN)
	}
	if rec.SkippedRecords == 0 {
		t.Fatal("no skipped records: the crash window (snapshot committed, log not truncated) was not exercised")
	}
	if rec.ReplayedAdds != 0 {
		t.Fatalf("replayed %d adds that the committed snapshot already held", rec.ReplayedAdds)
	}
	// Open must have finished the crashed checkpoint's housekeeping.
	lsns, err := SnapshotLSNsFS(m, "data")
	if err != nil {
		t.Fatal(err)
	}
	if len(lsns) != 1 || lsns[0] != 21 {
		t.Fatalf("snapshots after reopen: %v, want the crash-committed [21] only", lsns)
	}
	if segs := re.WAL().Stats().Segments; segs > 2 {
		t.Fatalf("%d log segments survived reopen; open must truncate below the snapshot", segs)
	}
	assertSameResults(t, "post-crash", re, rebuildLive(t, 2, docs))
	// And the repaired directory keeps working.
	if err := re.Add("after", "needle epsilon"); err != nil {
		t.Fatal(err)
	}
	got, err := re.Search(MustParse(BOOL, `'needle'`))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, match := range got {
		found = found || match.ID == "after"
	}
	if !found {
		t.Fatalf("post-recovery add missing from search: %v", got)
	}
}

// TestAutoCheckpointByRecords drives the record-count trigger: mutations
// alone must produce a checkpoint in the background, bounding what a
// subsequent open replays.
func TestAutoCheckpointByRecords(t *testing.T) {
	m := errfs.NewMem()
	opts := memDurableOpts(2, m)
	opts.AutoCheckpoint = AutoCheckpoint{MaxLogRecords: 8}
	s, err := OpenDurable("data", opts)
	if err != nil {
		t.Fatal(err)
	}
	docs := segCorpus(30)
	for _, d := range docs {
		if err := s.Add(d[0], d[1]); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "auto checkpoint", func() bool {
		return s.WALStats().AutoCheckpoints >= 1
	})
	ws := s.WALStats()
	if ws.AutoCheckpointError != "" {
		t.Fatalf("auto checkpoint error: %s", ws.AutoCheckpointError)
	}
	if ws.LastCheckpointLSN == 0 {
		t.Fatal("auto checkpoint completed but recorded no LSN")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurable("data", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rec := re.WALStats().Recovery
	if rec.SnapshotLSN == 0 {
		t.Fatal("reopen found no snapshot after auto checkpointing")
	}
	if rec.ReplayedRecords >= 30 {
		t.Fatalf("replayed %d records; auto checkpoints should have bounded the tail", rec.ReplayedRecords)
	}
	assertSameResults(t, "auto-ckpt", re, rebuildLive(t, 2, docs))
}

// TestAutoCheckpointByBytes drives the byte-size trigger.
func TestAutoCheckpointByBytes(t *testing.T) {
	m := errfs.NewMem()
	opts := memDurableOpts(2, m)
	opts.AutoCheckpoint = AutoCheckpoint{MaxLogBytes: 1 << 10}
	s, err := OpenDurable("data", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 40; i++ {
		if err := s.Add(fmt.Sprintf("doc%03d", i), "alpha beta gamma delta epsilon zeta"); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "auto checkpoint by bytes", func() bool {
		return s.WALStats().AutoCheckpoints >= 1
	})
	if lsns, err := SnapshotLSNsFS(m, "data"); err != nil || len(lsns) == 0 {
		t.Fatalf("snapshots %v, err %v after byte-triggered auto checkpoint", lsns, err)
	}
}

// TestDurableFaultInjectionProperty interleaves every mutation kind with
// checkpoints, injected fsync failures and crashes, holding one property
// throughout: after every recovery, search results — Boolean and ranked,
// every dialect, exact score equality — are byte-identical to an index
// built from scratch over exactly the acknowledged live documents. The
// schedule is seeded and the seed is in the subtest name, so a failure
// replays deterministically.
func TestDurableFaultInjectionProperty(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runDurableProperty(t, seed)
		})
	}
}

func runDurableProperty(t *testing.T, seed int64) {
	const shards = 3
	rng := rand.New(rand.NewSource(seed))
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "needle", "common", "task", "completion"}
	body := func() string {
		words := ""
		for w := 0; w < 4+rng.Intn(8); w++ {
			if words != "" {
				words += " "
			}
			words += vocab[rng.Intn(len(vocab))]
		}
		return words
	}

	m := errfs.NewMem()
	s, err := OpenDurable("data", memDurableOpts(shards, m))
	if err != nil {
		t.Fatal(err)
	}
	// The oracle: live documents in insertion order, exactly the
	// acknowledged state. SyncAlways means acknowledged == durable, so a
	// crash never costs the oracle anything.
	var live [][2]string
	pos := map[string]int{}
	nextID := 0
	addOracle := func(id, text string) {
		pos[id] = len(live)
		live = append(live, [2]string{id, text})
	}
	delOracle := func(id string) {
		i, ok := pos[id]
		if !ok {
			return
		}
		copy(live[i:], live[i+1:])
		live = live[:len(live)-1]
		delete(pos, id)
		for j := i; j < len(live); j++ {
			pos[live[j][0]] = j
		}
	}
	randLive := func() string { return live[rng.Intn(len(live))][0] }
	crashReopenMem := func(label string) {
		m.Crash()
		s.Close() // tolerated failure on stale handles; stops goroutines
		var err error
		s, err = OpenDurable("data", memDurableOpts(shards, m))
		if err != nil {
			t.Fatalf("%s: reopening after crash: %v", label, err)
		}
		assertSameResults(t, label, s, rebuildLive(t, shards, live))
	}

	const steps = 120
	for i := 0; i < steps; i++ {
		label := fmt.Sprintf("step %d", i)
		switch p := rng.Intn(100); {
		case p < 35: // single add
			id := fmt.Sprintf("doc%04d", nextID)
			nextID++
			text := body()
			if err := s.Add(id, text); err != nil {
				t.Fatalf("%s: add %s: %v", label, id, err)
			}
			addOracle(id, text)
		case p < 45: // batch add
			n := 2 + rng.Intn(3)
			docs := make([]Document, n)
			for j := range docs {
				docs[j] = Document{ID: fmt.Sprintf("doc%04d", nextID), Body: body()}
				nextID++
			}
			if err := s.AddBatch(docs); err != nil {
				t.Fatalf("%s: add batch: %v", label, err)
			}
			for _, d := range docs {
				addOracle(d.ID, d.Body)
			}
		case p < 60: // single delete
			if len(live) == 0 {
				continue
			}
			id := randLive()
			if !s.Delete(id) {
				t.Fatalf("%s: delete of live %s missed", label, id)
			}
			delOracle(id)
		case p < 70: // batch delete, dups and misses included
			if len(live) == 0 {
				continue
			}
			ids := []string{randLive(), randLive(), "doc-never-existed"}
			ids = append(ids, ids[0])
			n, err := s.DeleteBatch(ids)
			if err != nil {
				t.Fatalf("%s: delete batch: %v", label, err)
			}
			uniq := map[string]bool{ids[0]: true, ids[1]: true}
			if n != len(uniq) {
				t.Fatalf("%s: delete batch removed %d of %d live targets", label, n, len(uniq))
			}
			for id := range uniq {
				delOracle(id)
			}
		case p < 80: // checkpoint
			if _, err := s.Checkpoint(""); err != nil {
				t.Fatalf("%s: checkpoint: %v", label, err)
			}
		case p < 95: // crash and recover
			crashReopenMem(label)
		default: // injected fsync failure: ack must fail, then recover
			m.FailSyncAt(1)
			id := fmt.Sprintf("doc%04d", nextID)
			nextID++
			if err := s.Add(id, body()); err == nil {
				t.Fatalf("%s: add over failed fsync acknowledged", label)
			}
			// Durability unknown; the log is poisoned — the only safe
			// continuation is crash recovery, and the document must be gone.
			crashReopenMem(label)
			if s.Docs() != len(live) {
				t.Fatalf("%s: %d docs after failed-ack recovery, oracle has %d", label, s.Docs(), len(live))
			}
		}
	}
	// Final verification: one more crash recovery, then a clean close and
	// reopen, both byte-identical to the oracle.
	crashReopenMem("final crash")
	if err := s.Close(); err != nil {
		t.Fatalf("clean close: %v", err)
	}
	re, err := OpenDurable("data", memDurableOpts(shards, m))
	if err != nil {
		t.Fatalf("clean reopen: %v", err)
	}
	defer re.Close()
	assertSameResults(t, "final clean reopen", re, rebuildLive(t, shards, live))
}
