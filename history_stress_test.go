package fulltext

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fulltext/internal/telemetry"
	"fulltext/internal/telemetry/analytics"
	"fulltext/internal/telemetry/history"
)

// The sampler's lock discipline under fire: a durable index mutating,
// querying and checkpointing while the history sampler ticks at 1ms,
// SLO gauges (which read the history from inside registry scrapes) are
// exported, and concurrent readers scrape /metrics and window the
// history. Run with -race this is the proof that registry.mu → History.mu
// is the only nesting and that it never inverts.
func TestHistorySamplerRaceWithLiveIndex(t *testing.T) {
	dir := t.TempDir()
	ix, err := OpenDurable(dir, DurableOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	reg := telemetry.New()
	ix.EnableTelemetry(reg)

	h := history.New(reg, history.Options{Interval: time.Millisecond, Retention: time.Second})
	slo := history.NewSLO(h, history.SLOOptions{FastWindow: 100 * time.Millisecond, SlowWindow: 500 * time.Millisecond})
	slo.AddLatencyObjective("plan_p99", "fulltext_query_plan_seconds", 0.99, 50*time.Millisecond)
	slo.Register(reg)
	h.Start()
	defer h.Close()

	sketch := analytics.New(16)
	for i := 0; i < 50; i++ {
		if err := ix.Add(fmt.Sprintf("seed%d", i), "alpha beta gamma delta"); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	fail := make(chan error, 16)
	run := func(fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if err := fn(); err != nil {
					select {
					case fail <- err:
					default:
					}
					return
				}
			}
		}()
	}

	var added atomic.Uint64
	run(func() error { // writer
		n := added.Add(1)
		return ix.Add(fmt.Sprintf("w%d", n), "alpha beta live mutation")
	})
	run(func() error { // deleter: chases the writer, misses are fine
		if n := added.Load(); n > 1 {
			ix.Delete(fmt.Sprintf("w%d", n-1))
		}
		return nil
	})
	q := MustParse(BOOL, "'alpha' AND 'beta'")
	run(func() error { // ranked queries with a per-query recorder + sketch
		rec := &EvalRecorder{}
		if _, err := ix.SearchRankedOpts(q, TFIDF, 5, RankOptions{Recorder: rec}); err != nil {
			return err
		}
		st := rec.Stats()
		sketch.Record(q.Shape(), analytics.Observation{
			Latency:       time.Microsecond,
			DocsScored:    st.ScoredDocs,
			BlocksSkipped: st.BlocksSkipped,
		})
		return nil
	})
	run(func() error { // checkpoints
		_, err := ix.Checkpoint("")
		return err
	})
	run(func() error { // exposition scrapes sample the SLO gauges
		_, err := reg.WriteTo(io.Discard)
		return err
	})
	run(func() error { // history readers
		h.Window(500*time.Millisecond, "")
		slo.Evaluate()
		return nil
	})

	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	close(fail)
	if err := <-fail; err != nil {
		t.Fatal(err)
	}

	if h.Len() < 2 {
		t.Fatalf("sampler retained %d ticks, want >= 2", h.Len())
	}
	if sketch.Recorded() == 0 {
		t.Fatal("no queries recorded in the sketch")
	}
	// The window over a live run must carry the core families.
	w := h.Window(time.Second, "fulltext_docs")
	if len(w.Series) == 0 {
		t.Fatalf("history window missing fulltext_docs: %+v", w)
	}
}
