package fulltext

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fulltext/internal/segment"
	"fulltext/internal/shard"
)

// durableOpts is the test default: group commit with a tight interval so
// ticker-side code paths run, and small log segments so rotation happens.
func durableOpts(shards int) DurableOptions {
	return DurableOptions{
		Shards:          shards,
		SyncInterval:    5 * time.Millisecond,
		WALSegmentBytes: 1 << 12,
	}
}

// crashReopen simulates a crash and restart: the original index is
// abandoned mid-flight (its log closed without quiescing merges — under
// the group-commit policy every acknowledged record has already reached
// the kernel, exactly as it would have when SIGKILL landed) and the
// directory is reopened from disk.
func crashReopen(t *testing.T, s *ShardedIndex, dir string, shards int) *ShardedIndex {
	t.Helper()
	if err := s.WAL().Close(); err != nil {
		t.Fatalf("closing abandoned log: %v", err)
	}
	re, err := OpenDurable(dir, durableOpts(shards))
	if err != nil {
		t.Fatalf("reopening %s: %v", dir, err)
	}
	t.Cleanup(func() { re.Close() })
	return re
}

func TestDurableFreshOpenIsEmpty(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(dir, durableOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Docs() != 0 || s.Shards() != 3 {
		t.Fatalf("fresh durable index: %d docs, %d shards", s.Docs(), s.Shards())
	}
	ws := s.WALStats()
	if !ws.Attached || ws.NextLSN != 0 || ws.Recovery.ReplayedRecords != 0 {
		t.Fatalf("fresh WAL stats: %+v", ws)
	}
	if err := s.Add("a", "alpha beta"); err != nil {
		t.Fatal(err)
	}
	got, err := s.Search(MustParse(BOOL, `'alpha'`))
	if err != nil || len(got) != 1 || got[0].ID != "a" {
		t.Fatalf("search on fresh durable index: %v, %v", got, err)
	}
	if ws := s.WALStats(); ws.Appends != 1 || ws.NextLSN != 1 {
		t.Fatalf("WAL stats after one add: %+v", ws)
	}
}

// TestCrashReplayEquivalence is the acceptance criterion: after a mixed
// mutation workload — single adds, batch adds, pre-tokenized adds, single
// and batch deletes, re-adds, zero-token documents — with nothing
// checkpointed, a crashed-and-recovered index must answer every query
// byte-identically (results and scores, all three dialects, both scoring
// models) to the index that never crashed, and to a from-scratch rebuild
// over the live documents.
func TestCrashReplayEquivalence(t *testing.T) {
	const shards = 3
	dir := t.TempDir()
	s, err := OpenDurable(dir, durableOpts(shards))
	if err != nil {
		t.Fatal(err)
	}
	docs := segCorpus(40)
	live := applyMixedWorkload(t, s, docs)

	re := crashReopen(t, s, dir, shards)
	if got := re.WALStats(); got.Recovery.ReplayedRecords == 0 || got.Recovery.SnapshotLSN != 0 {
		t.Fatalf("recovery stats after crash: %+v", got.Recovery)
	}
	assertSameResults(t, "recovered-vs-uncrashed", re, s)
	assertSameResults(t, "recovered-vs-rebuild", re, rebuildLive(t, shards, live))
	// Recovery must not have rebuilt any shard: replay goes through the
	// same incremental paths as the original mutations (load counts the
	// initial empty-shard constructions only).
	if st := re.SegmentStats(); st.Rebuilds != shards {
		t.Fatalf("recovery rebuilt shards: %d rebuilds, want %d", st.Rebuilds, shards)
	}
}

// applyMixedWorkload drives every mutation entry point and returns the
// final live document set (insertion-ordered, as a rebuild would add it).
func applyMixedWorkload(t *testing.T, s *ShardedIndex, docs [][2]string) [][2]string {
	t.Helper()
	var live [][2]string
	// Singles.
	for _, d := range docs[:10] {
		if err := s.Add(d[0], d[1]); err != nil {
			t.Fatal(err)
		}
		live = append(live, d)
	}
	// One batch.
	batch := make([]Document, 0, 10)
	for _, d := range docs[10:20] {
		batch = append(batch, Document{ID: d[0], Body: d[1]})
		live = append(live, d)
	}
	if err := s.AddBatch(batch); err != nil {
		t.Fatal(err)
	}
	// Pre-tokenized, singly and batched.
	if err := s.AddTokens("tok-1", []string{"needle", "gamma"}); err != nil {
		t.Fatal(err)
	}
	live = append(live, [2]string{"tok-1", "needle gamma"})
	if err := s.AddTokensBatch([]TokenDocument{
		{ID: "tok-2", Tokens: []string{"alpha", "common"}},
		{ID: "tok-3", Tokens: nil}, // zero-token document
	}); err != nil {
		t.Fatal(err)
	}
	live = append(live, [2]string{"tok-2", "alpha common"}, [2]string{"tok-3", ""})
	// A zero-token document through the raw-text path too.
	if err := s.Add("empty-doc", ""); err != nil {
		t.Fatal(err)
	}
	live = append(live, [2]string{"empty-doc", ""})
	// Single deletes, including a miss.
	if !s.Delete(docs[3][0]) {
		t.Fatalf("delete %s missed", docs[3][0])
	}
	live = removeDoc(live, docs[3][0])
	if s.Delete("never-existed") {
		t.Fatal("deleted a ghost")
	}
	// Batch delete with misses and duplicates mixed in.
	delIDs := []string{docs[12][0], "never-existed", docs[15][0], docs[12][0]}
	n, err := s.DeleteBatch(delIDs)
	if err != nil || n != 2 {
		t.Fatalf("DeleteBatch = %d, %v; want 2", n, err)
	}
	live = removeDoc(removeDoc(live, docs[12][0]), docs[15][0])
	// Re-add a deleted id with a different body.
	if err := s.Add(docs[3][0], "gamma gamma needle"); err != nil {
		t.Fatal(err)
	}
	live = append(live, [2]string{docs[3][0], "gamma gamma needle"})
	// Tail of singles to leave unmerged deltas behind.
	for _, d := range docs[20:] {
		if err := s.Add(d[0], d[1]); err != nil {
			t.Fatal(err)
		}
		live = append(live, d)
	}
	return live
}

// TestCrashReplayEquivalenceMidBackgroundMerge crashes while background
// merges are still in flight (never quiesced): whatever the merge state
// was at the crash, recovery must reconstruct the same logical index.
func TestCrashReplayEquivalenceMidBackgroundMerge(t *testing.T) {
	const shards = 3
	dir := t.TempDir()
	s, err := OpenDurable(dir, durableOpts(shards))
	if err != nil {
		t.Fatal(err)
	}
	p := segment.DefaultPolicy()
	p.BackgroundMinDocs = 2 // every real merge on the worker pool
	s.SetMergePolicy(p)
	docs := segCorpus(60)
	var live [][2]string
	for i, d := range docs {
		if err := s.Add(d[0], d[1]); err != nil {
			t.Fatal(err)
		}
		live = append(live, d)
		if i%7 == 3 {
			s.Delete(d[0])
			live = removeDoc(live, d[0])
		}
	}
	// No WaitMerges: the crash lands wherever the merge pool happens to be.
	re := crashReopen(t, s, dir, shards)
	re.WaitMerges()
	assertSameResults(t, "mid-merge-crash", re, rebuildLive(t, shards, live))
}

func TestCheckpointTruncatesAndBoundsReplay(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	s, err := OpenDurable(dir, durableOpts(shards))
	if err != nil {
		t.Fatal(err)
	}
	docs := segCorpus(30)
	for _, d := range docs[:20] {
		if err := s.Add(d[0], d[1]); err != nil {
			t.Fatal(err)
		}
	}
	ck, err := s.Checkpoint("")
	if err != nil {
		t.Fatal(err)
	}
	if ck.LSN != 20 || ck.SnapshotBytes == 0 {
		t.Fatalf("checkpoint stats: %+v", ck)
	}
	if lsns, err := SnapshotLSNs(dir); err != nil || len(lsns) != 1 || lsns[0] != 20 {
		t.Fatalf("snapshots after checkpoint: %v, %v", lsns, err)
	}
	// The log must have shrunk to just the post-checkpoint tail (the
	// barrier record in the fresh active segment).
	if ws := s.WALStats(); ws.Segments != 1 || ws.Checkpoints != 1 || ws.LastCheckpointLSN != 20 {
		t.Fatalf("WAL stats after checkpoint: %+v", ws)
	}
	// Mutations after the checkpoint live only in the log tail.
	for _, d := range docs[20:] {
		if err := s.Add(d[0], d[1]); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete(docs[0][0])

	re := crashReopen(t, s, dir, shards)
	rec := re.WALStats().Recovery
	if rec.SnapshotLSN != 20 {
		t.Fatalf("recovered from snapshot LSN %d, want 20", rec.SnapshotLSN)
	}
	// Tail = 1 barrier + 10 adds + 1 delete; nothing skipped (truncation
	// completed before the crash).
	if rec.ReplayedRecords != 12 || rec.ReplayedAdds != 10 || rec.ReplayedDeletes != 1 ||
		rec.ReplayedCheckpoints != 1 || rec.SkippedRecords != 0 {
		t.Fatalf("recovery stats: %+v", rec)
	}
	live := docs[1:]
	assertSameResults(t, "checkpoint-recovery", re, rebuildLive(t, shards, live))

	// A second checkpoint retires the first snapshot.
	if _, err := re.Checkpoint(""); err != nil {
		t.Fatal(err)
	}
	if lsns, _ := SnapshotLSNs(dir); len(lsns) != 1 || lsns[0] <= 20 {
		t.Fatalf("old snapshot not retired: %v", lsns)
	}
}

// TestCheckpointCrashBeforeTruncateReplaysIdempotently restores the
// pre-checkpoint log segments after a checkpoint — exactly the on-disk
// state a crash between "snapshot renamed" and "segments truncated"
// leaves — and verifies recovery skips the already-snapshotted records
// instead of applying them twice.
func TestCheckpointCrashBeforeTruncateReplaysIdempotently(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	walDir := filepath.Join(dir, walSubdir)
	s, err := OpenDurable(dir, durableOpts(shards))
	if err != nil {
		t.Fatal(err)
	}
	docs := segCorpus(25)
	for _, d := range docs {
		if err := s.Add(d[0], d[1]); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete(docs[2][0])

	// Save every log segment, checkpoint (which truncates them), then put
	// the truncated ones back.
	saved := map[string][]byte{}
	paths, err := filepath.Glob(filepath.Join(walDir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WAL().Sync(); err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		saved[p] = data
	}
	ck, err := s.Checkpoint("")
	if err != nil {
		t.Fatal(err)
	}
	if ck.TruncatedSegments == 0 {
		t.Fatalf("checkpoint truncated nothing: %+v (need truncation to simulate the crash window)", ck)
	}
	restored := 0
	for p, data := range saved {
		if _, err := os.Stat(p); os.IsNotExist(err) {
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
			restored++
		}
	}
	if restored == 0 {
		t.Fatal("no segments to restore; the crash window is empty")
	}

	re := crashReopen(t, s, dir, shards)
	rec := re.WALStats().Recovery
	if rec.SkippedRecords == 0 {
		t.Fatalf("idempotent replay skipped nothing: %+v", rec)
	}
	if rec.SnapshotLSN != ck.LSN {
		t.Fatalf("recovered from LSN %d, want %d", rec.SnapshotLSN, ck.LSN)
	}
	live := removeDoc(append([][2]string(nil), docs...), docs[2][0])
	assertSameResults(t, "crash-before-truncate", re, rebuildLive(t, shards, live))
}

func TestZeroTokenDocumentsSurviveReplay(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	s, err := OpenDurable(dir, durableOpts(shards))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddBatch([]Document{
		{ID: "real", Body: "alpha beta needle"},
		{ID: "empty-1", Body: ""},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("empty-2", ""); err != nil {
		t.Fatal(err)
	}
	if !s.Delete("empty-1") {
		t.Fatal("empty-1 not deleted")
	}
	re := crashReopen(t, s, dir, shards)
	if re.Docs() != 2 {
		t.Fatalf("recovered %d docs, want 2", re.Docs())
	}
	if re.Delete("empty-1") {
		t.Fatal("tombstoned zero-token document came back to life")
	}
	if !re.Delete("empty-2") {
		t.Fatal("zero-token document lost in replay")
	}
	assertSameResults(t, "zero-token", re, rebuildLive(t, shards, [][2]string{{"real", "alpha beta needle"}}))
}

func TestDurableTornTailDropsLastMutation(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	s, err := OpenDurable(dir, durableOpts(shards))
	if err != nil {
		t.Fatal(err)
	}
	docs := segCorpus(10)
	for _, d := range docs {
		if err := s.Add(d[0], d[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record mid-write.
	paths, _ := filepath.Glob(filepath.Join(dir, walSubdir, "wal-*.log"))
	last := paths[len(paths)-1]
	info, _ := os.Stat(last)
	if err := os.Truncate(last, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurable(dir, durableOpts(shards))
	if err != nil {
		t.Fatalf("torn tail not dropped cleanly: %v", err)
	}
	defer re.Close()
	rec := re.WALStats().Recovery
	if !rec.TornTailDropped || rec.ReplayedRecords != 9 {
		t.Fatalf("recovery stats after torn tail: %+v", rec)
	}
	assertSameResults(t, "torn-tail", re, rebuildLive(t, shards, docs[:9]))
}

func TestDurableCorruptCRCFailsOpen(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	s, err := OpenDurable(dir, durableOpts(shards))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range segCorpus(10) {
		if err := s.Add(d[0], d[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	paths, _ := filepath.Glob(filepath.Join(dir, walSubdir, "wal-*.log"))
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(paths[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(dir, durableOpts(shards)); err == nil ||
		!strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt log opened: %v", err)
	}
}

func TestCheckpointRequiresDurableIndex(t *testing.T) {
	sb := NewShardedBuilder(2)
	if err := sb.Add("a", "alpha"); err != nil {
		t.Fatal(err)
	}
	s := sb.Build()
	if _, err := s.Checkpoint(""); err == nil {
		t.Fatal("Checkpoint succeeded without a WAL")
	}
	if ws := s.WALStats(); ws.Attached {
		t.Fatalf("non-durable index reports attached WAL: %+v", ws)
	}
	if err := s.Close(); err != nil { // no-op without a WAL
		t.Fatal(err)
	}
}

// TestDurableReopenAfterCleanClose is the no-crash path: close, reopen,
// everything still there, and the WAL keeps extending the same history.
func TestDurableReopenAfterCleanClose(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	s, err := OpenDurable(dir, durableOpts(shards))
	if err != nil {
		t.Fatal(err)
	}
	docs := segCorpus(12)
	for _, d := range docs[:6] {
		if err := s.Add(d[0], d[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurable(dir, durableOpts(shards))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, d := range docs[6:] {
		if err := re.Add(d[0], d[1]); err != nil {
			t.Fatal(err)
		}
	}
	if re.Docs() != 12 {
		t.Fatalf("%d docs after reopen+extend, want 12", re.Docs())
	}
	assertSameResults(t, "clean-reopen", re, rebuildLive(t, shards, docs))
}

// TestDurableMutationsFailAfterClose pins the contract that a closed
// durable index refuses new mutations instead of applying them unlogged.
func TestDurableMutationsFailAfterClose(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(dir, durableOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add("a", "alpha"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("b", "beta"); err == nil {
		t.Fatal("Add succeeded on a closed durable index")
	}
	if _, err := s.DeleteBatch([]string{"a"}); err == nil {
		t.Fatal("DeleteBatch succeeded on a closed durable index")
	}
	// The rejected mutations must not have half-applied.
	if s.Docs() != 1 {
		t.Fatalf("%d docs after rejected mutations, want 1", s.Docs())
	}
}

// TestDurableWorkloadUnderRace exercises concurrent durable ingest,
// queries and checkpoints together (run under -race in CI), then crashes
// and verifies recovery equivalence.
func TestDurableWorkloadUnderRace(t *testing.T) {
	const shards = 3
	dir := t.TempDir()
	s, err := OpenDurable(dir, durableOpts(shards))
	if err != nil {
		t.Fatal(err)
	}
	p := segment.DefaultPolicy()
	p.BackgroundMinDocs = 2
	p.MaxBackgroundWorkers = 2
	s.SetMergePolicy(p)
	docs := segCorpus(50)
	q := MustParse(BOOL, `'needle' OR 'common'`)
	done := make(chan struct{})
	go func() { // concurrent reader
		defer close(done)
		for i := 0; i < 200; i++ {
			if _, err := s.Search(q); err != nil {
				t.Error(err)
				return
			}
			if _, err := s.SearchRanked(q, TFIDF, 5); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var live [][2]string
	for i, d := range docs {
		if err := s.Add(d[0], d[1]); err != nil {
			t.Fatal(err)
		}
		live = append(live, d)
		if i%10 == 5 {
			if _, err := s.Checkpoint(""); err != nil {
				t.Fatal(err)
			}
		}
		if i%6 == 2 {
			s.Delete(d[0])
			live = removeDoc(live, d[0])
		}
	}
	<-done
	re := crashReopen(t, s, dir, shards)
	re.WaitMerges()
	assertSameResults(t, "race-workload", re, rebuildLive(t, shards, live))
}

// idsForShard generates n document ids that all hash to the given shard,
// so merge tests can aim mutations at specific shards.
func idsForShard(t *testing.T, nshards, si, n int) []string {
	t.Helper()
	out := make([]string, 0, n)
	for i := 0; len(out) < n; i++ {
		id := fmt.Sprintf("s%d-%d", si, i)
		if shard.Pick(id, nshards) == si {
			out = append(out, id)
		}
		if i > 100000 {
			t.Fatalf("could not find %d ids for shard %d/%d", n, si, nshards)
		}
	}
	return out
}
