package fulltext

// Regression tests for the SearchRanked normalization bug: SearchRanked
// used to hand the rewritten-but-unnormalized AST to the complete engine
// while SearchWith normalized first, so queries whose normalization changes
// their shape (negative-predicate desugaring, quantifier hoisting) could
// rank a different document set than Boolean search matched.

import (
	"sort"
	"testing"
)

func sortedIDs(ms []Match) []string {
	out := ids(ms)
	sort.Strings(out)
	return out
}

func TestSearchRankedUsesNormalizedQuery(t *testing.T) {
	ix := buildIndex(t, map[string]string{
		"d1": "alpha beta gamma",
		"d2": "beta alpha gamma",
		"d3": "alpha gamma beta delta",
		"d4": "delta gamma",
		"d5": "beta alpha filler1 filler2 filler3 filler4 filler5 filler6",
		"d6": "beta alpha",
	})
	// Each query changes shape under lang.Normalize: NOT pred(...) desugars
	// to the complement predicate, and SOME hoists out of conjunctions.
	queries := []*Query{
		MustParse(COMP, `SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'beta' AND NOT ordered(p1,p2))`),
		MustParse(COMP, `SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'beta' AND NOT distance(p1,p2,0))`),
		MustParse(COMP, `'gamma' AND SOME p (p HAS 'beta')`),
	}
	// Unnormalized, the complete engine scores every NOT pred(...) match 0
	// (the difference path carries no token weight), collapsing the ranking
	// into insertion order. d6 is the more relevant match but the later
	// document: only the normalized (desugared) query ranks it first.
	nq := MustParse(COMP, `SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'beta' AND NOT ordered(p1,p2))`)
	ranked, err := ix.SearchRanked(nq, TFIDF, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("%s ranked %v, want d2, d5 and d6", nq, ids(ranked))
	}
	if ranked[0].Score <= 0 {
		t.Fatalf("%s: top score %g, want > 0 (unnormalized evaluation loses token weights)", nq, ranked[0].Score)
	}
	if ranked[0].ID != "d6" {
		t.Fatalf("%s ranked %v, want the more relevant d6 first", nq, ids(ranked))
	}

	for _, q := range queries {
		matched, err := ix.SearchWith(q, EngineAuto)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		for _, model := range []ScoringModel{TFIDF, PRA} {
			ranked, err := ix.SearchRanked(q, model, 0)
			if err != nil {
				t.Fatalf("%s (model %d): %v", q, model, err)
			}
			got, want := sortedIDs(ranked), sortedIDs(matched)
			if len(got) != len(want) {
				t.Fatalf("%s (model %d): ranked %v but Boolean search matched %v", q, model, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s (model %d): ranked %v but Boolean search matched %v", q, model, got, want)
				}
			}
		}
	}
}
