package fulltext

import (
	"fmt"
	"strings"
	"testing"

	"fulltext/internal/telemetry"
)

// scrape renders the registry and re-parses it with the strict parser,
// returning families by name.
func scrape(t *testing.T, r *telemetry.Registry) map[string]telemetry.Family {
	t.Helper()
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	fams, err := telemetry.ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("exposition does not re-parse: %v\n%s", err, b.String())
	}
	out := make(map[string]telemetry.Family, len(fams))
	for _, f := range fams {
		out[f.Name] = f
	}
	return out
}

// histCount returns the _count of the family's series matching labels.
func histCount(f telemetry.Family, labels map[string]string) float64 {
	for _, s := range f.Samples {
		if !strings.HasSuffix(s.Name, "_count") {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value
		}
	}
	return -1
}

func TestEnableTelemetryQueryMetrics(t *testing.T) {
	b := NewShardedBuilder(3)
	for i := 0; i < 30; i++ {
		if err := b.Add(fmt.Sprintf("d%d", i), fmt.Sprintf("common token %d needle", i)); err != nil {
			t.Fatal(err)
		}
	}
	ix := b.Build()
	ix.SetQueryCacheSize(0) // every query runs the full path
	reg := telemetry.New()
	ix.EnableTelemetry(reg)

	q, err := Parse(BOOL, "'common' AND 'needle'")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Search(q); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.SearchRanked(q, TFIDF, 5); err != nil {
		t.Fatal(err)
	}

	fams := scrape(t, reg)
	if got := histCount(fams["fulltext_query_plan_seconds"], nil); got != 2 {
		t.Fatalf("plan histogram count = %v, want 2", got)
	}
	// One shard-eval observation per shard per query.
	if got := histCount(fams["fulltext_query_shard_eval_seconds"], nil); got != float64(2*ix.Shards()) {
		t.Fatalf("shard-eval histogram count = %v, want %d", got, 2*ix.Shards())
	}
	if got := histCount(fams["fulltext_query_merge_seconds"], nil); got != 2 {
		t.Fatalf("merge histogram count = %v, want 2", got)
	}
	var wand float64
	for _, s := range fams["fulltext_ranked_evals_total"].Samples {
		if s.Labels["path"] == "wand" {
			wand = s.Value
		}
	}
	if wand == 0 {
		t.Fatalf("ranked query did not count a WAND evaluation")
	}
	var docs float64
	for _, s := range fams["fulltext_docs"].Samples {
		docs = s.Value
	}
	if docs != 30 {
		t.Fatalf("fulltext_docs = %v, want 30", docs)
	}
}

func TestSearchWithTraceCoversShardsWithoutRegistry(t *testing.T) {
	b := NewShardedBuilder(4)
	for i := 0; i < 20; i++ {
		if err := b.Add(fmt.Sprintf("d%d", i), "alpha beta gamma"); err != nil {
			t.Fatal(err)
		}
	}
	ix := b.Build()
	ix.SetQueryCacheSize(0)
	q, err := Parse(BOOL, "'alpha'")
	if err != nil {
		t.Fatal(err)
	}

	tracer := telemetry.NewTracer()
	root := tracer.Start("query")
	if _, err := ix.SearchWithTrace(q, EngineAuto, root); err != nil {
		t.Fatal(err)
	}
	tree := root.Tree()
	names := map[string]int{}
	var walk func(telemetry.SpanJSON)
	walk = func(s telemetry.SpanJSON) {
		names[s.Name]++
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(tree)
	if names["plan"] != 1 || names["merge"] != 1 {
		t.Fatalf("span tree missing plan/merge: %v", names)
	}
	for i := 0; i < ix.Shards(); i++ {
		if names[fmt.Sprintf("shard %d", i)] != 1 {
			t.Fatalf("span tree missing shard %d: %v", i, names)
		}
	}

	// Ranked path via RankOptions.Trace, and the cache-hit annotation.
	ix.SetQueryCacheSize(16)
	r2 := tracer.Start("ranked")
	if _, err := ix.SearchRankedOpts(q, TFIDF, 5, RankOptions{Trace: r2}); err != nil {
		t.Fatal(err)
	}
	r3 := tracer.Start("ranked-cached")
	if _, err := ix.SearchRankedOpts(q, TFIDF, 5, RankOptions{Trace: r3}); err != nil {
		t.Fatal(err)
	}
	hit := r3.Tree()
	if hit.Notes["cache"] != "hit" {
		t.Fatalf("repeat query span not annotated as cache hit: %+v", hit)
	}
	if len(hit.Children) != 0 {
		t.Fatalf("cache hit ran evaluation spans: %+v", hit)
	}
}

func TestTelemetryDurableCheckpointAndRecovery(t *testing.T) {
	dir := t.TempDir()
	ix, err := OpenDurable(dir, DurableOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	ix.EnableTelemetry(reg)
	for i := 0; i < 10; i++ {
		if err := ix.Add(fmt.Sprintf("d%d", i), "durable telemetry doc"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ix.Checkpoint(""); err != nil {
		t.Fatal(err)
	}
	fams := scrape(t, reg)
	for _, phase := range []string{"serialize", "commit", "rotate", "truncate"} {
		if got := histCount(fams["fulltext_checkpoint_phase_seconds"], map[string]string{"phase": phase}); got != 1 {
			t.Fatalf("checkpoint phase %q count = %v, want 1", phase, got)
		}
	}
	if got := histCount(fams["fulltext_checkpoint_seconds"], nil); got != 1 {
		t.Fatalf("checkpoint total count = %v, want 1", got)
	}
	if got := histCount(fams["fulltext_wal_append_seconds"], nil); got < 10 {
		t.Fatalf("wal append histogram count = %v, want >= 10", got)
	}
	var ckpts float64
	for _, s := range fams["fulltext_checkpoints_total"].Samples {
		ckpts = s.Value
	}
	if ckpts != 1 {
		t.Fatalf("fulltext_checkpoints_total = %v, want 1", ckpts)
	}

	// Post-checkpoint mutations replay on reopen and surface as recovery
	// counters in a fresh registry (the crash-smoke assertion).
	if err := ix.Add("post-ckpt", "replayed after restart"); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurable(dir, DurableOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	reg2 := telemetry.New()
	re.EnableTelemetry(reg2)
	fams2 := scrape(t, reg2)
	var replayed float64
	for _, s := range fams2["fulltext_wal_recovery_replayed_records_total"].Samples {
		replayed = s.Value
	}
	if replayed == 0 {
		t.Fatalf("recovery counter zero after replaying a post-checkpoint record")
	}
}
