module fulltext

go 1.24
