package fulltext

import (
	"bytes"
	"strings"
	"testing"
)

func buildIndex(t testing.TB, docs map[string]string) *Index {
	t.Helper()
	b := NewBuilder()
	// Deterministic insertion order.
	for _, id := range []string{"d1", "d2", "d3", "d4", "d5", "d6"} {
		if text, ok := docs[id]; ok {
			if err := b.Add(id, text); err != nil {
				t.Fatal(err)
			}
		}
	}
	return b.Build()
}

func testIndex(t testing.TB) *Index {
	return buildIndex(t, map[string]string{
		"d1": "test usability of the software test",
		"d2": "the quality test ran for usability",
		"d3": "nothing relevant here",
		"d4": "test test",
	})
}

func ids(ms []Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.ID
	}
	return out
}

func wantIDs(t *testing.T, ms []Match, want ...string) {
	t.Helper()
	got := ids(ms)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSearchAcrossDialects(t *testing.T) {
	ix := testIndex(t)

	ms, err := ix.Search(MustParse(BOOL, `'test' AND 'usability'`))
	if err != nil {
		t.Fatal(err)
	}
	wantIDs(t, ms, "d1", "d2")

	ms, err = ix.Search(MustParse(DIST, `dist('test','usability',0)`))
	if err != nil {
		t.Fatal(err)
	}
	wantIDs(t, ms, "d1")

	ms, err = ix.Search(MustParse(COMP,
		`SOME p1 SOME p2 (p1 HAS 'test' AND p2 HAS 'test' AND diffpos(p1,p2)) AND NOT 'usability'`))
	if err != nil {
		t.Fatal(err)
	}
	wantIDs(t, ms, "d4")
}

func TestEngineSelectionAgreement(t *testing.T) {
	ix := testIndex(t)
	queries := []struct {
		q       *Query
		class   Class
		engines []Engine
	}{
		{MustParse(BOOL, `'test' AND NOT 'usability'`), ClassBoolNoNeg,
			[]Engine{EngineBOOL, EnginePPRED, EngineCOMP}},
		{MustParse(BOOL, `NOT 'test'`), ClassBool, []Engine{EngineBOOL, EngineCOMP}},
		{MustParse(COMP, `SOME p1 SOME p2 (p1 HAS 'test' AND p2 HAS 'usability' AND distance(p1,p2,5))`),
			ClassPPred, []Engine{EnginePPRED, EngineNPRED, EngineCOMP}},
		{MustParse(COMP, `SOME p1 SOME p2 (p1 HAS 'test' AND p2 HAS 'usability' AND NOT distance(p1,p2,0))`),
			ClassNPred, []Engine{EngineNPRED, EngineCOMP}},
		{MustParse(COMP, `EVERY p (p HAS 'test')`), ClassComp, []Engine{EngineCOMP}},
	}
	for _, tc := range queries {
		if got := ix.Classify(tc.q); got != tc.class {
			t.Errorf("Classify(%s) = %s, want %s", tc.q, got, Class(tc.class))
		}
		auto, err := ix.Search(tc.q)
		if err != nil {
			t.Fatalf("auto %s: %v", tc.q, err)
		}
		for _, e := range tc.engines {
			forced, err := ix.SearchWith(tc.q, e)
			if err != nil {
				t.Fatalf("%s with %s: %v", tc.q, e, err)
			}
			if strings.Join(ids(forced), ",") != strings.Join(ids(auto), ",") {
				t.Errorf("%s: engine %s returned %v, auto returned %v", tc.q, e, ids(forced), ids(auto))
			}
		}
	}
}

func TestForcedEngineErrors(t *testing.T) {
	ix := testIndex(t)
	// BOOL engine cannot evaluate COMP constructs.
	if _, err := ix.SearchWith(MustParse(COMP, `SOME p (p HAS 'test')`), EngineBOOL); err == nil {
		t.Errorf("BOOL engine accepted a COMP query")
	}
	// PPRED rejects negative predicates.
	q := MustParse(COMP, `SOME p1 SOME p2 (p1 HAS 'test' AND p2 HAS 'usability' AND not_distance(p1,p2,3))`)
	if _, err := ix.SearchWith(q, EnginePPRED); err == nil {
		t.Errorf("PPRED engine accepted negative predicates")
	}
	// Unknown predicate fails validation up front.
	if _, err := ix.Search(MustParse(COMP, `SOME p (p HAS 'x' AND bogus(p))`)); err == nil {
		t.Errorf("unknown predicate accepted")
	}
}

func TestSearchRanked(t *testing.T) {
	ix := buildIndex(t, map[string]string{
		"d1": "usability usability usability",
		"d2": "usability plus quite a few more words in this one",
		"d3": "nothing",
	})
	q := MustParse(BOOL, `'usability'`)
	for _, model := range []ScoringModel{TFIDF, PRA} {
		ms, err := ix.SearchRanked(q, model, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != 2 {
			t.Fatalf("model %d: matches = %v", model, ms)
		}
		if ms[0].Score < ms[1].Score {
			t.Errorf("model %d: not sorted by score: %v", model, ms)
		}
	}
	// TF-IDF prefers the higher-tf document.
	ms, _ := ix.SearchRanked(q, TFIDF, 1)
	if len(ms) != 1 || ms[0].ID != "d1" {
		t.Errorf("topK ranking = %v", ms)
	}
}

func TestExplain(t *testing.T) {
	ix := testIndex(t)
	cases := map[string]string{
		`'test' AND 'usability'`: "engine: BOOL",
		`SOME p1 SOME p2 (p1 HAS 'test' AND p2 HAS 'usability' AND distance(p1,p2,5))`:     "engine: PPRED",
		`SOME p1 SOME p2 (p1 HAS 'test' AND p2 HAS 'usability' AND not_distance(p1,p2,5))`: "engine: NPRED",
		`EVERY p (p HAS 'test')`: "engine: COMP",
	}
	for src, want := range cases {
		d := COMP
		q := MustParse(d, src)
		out, err := ix.Explain(q)
		if err != nil {
			t.Fatalf("Explain(%s): %v", src, err)
		}
		if !strings.Contains(out, want) {
			t.Errorf("Explain(%s) = %q, want prefix %q", src, out, want)
		}
	}
}

func TestCustomPredicate(t *testing.T) {
	ix := testIndex(t)
	// even(p): the token ordinal is even.
	if err := ix.RegisterPredicate("even", 1, 0, func(ords []int32, _ []int) bool {
		return ords[0]%2 == 0
	}); err != nil {
		t.Fatal(err)
	}
	q := MustParse(COMP, `SOME p (p HAS 'test' AND even(p))`)
	if got := ix.Classify(q); got != ClassComp {
		t.Errorf("custom predicate class = %s, want COMP", got)
	}
	ms, err := ix.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	// d1 has 'test' at ordinals 1 and 6; d2 at 3; d4 at 1 and 2.
	wantIDs(t, ms, "d1", "d4")
	if err := ix.RegisterPredicate("even", 1, 0, nil); err == nil {
		t.Errorf("duplicate custom predicate accepted")
	}
}

func TestIndexRoundTrip(t *testing.T) {
	ix := testIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Docs() != ix.Docs() || got.Stats() != ix.Stats() {
		t.Fatalf("round trip changed stats: %+v vs %+v", got.Stats(), ix.Stats())
	}
	q := MustParse(COMP, `SOME p1 SOME p2 (p1 HAS 'test' AND p2 HAS 'usability' AND distance(p1,p2,5))`)
	a, err := ix.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(ids(a), ",") != strings.Join(ids(b), ",") {
		t.Fatalf("round trip changed results: %v vs %v", ids(a), ids(b))
	}
}

func TestReadIndexErrors(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Errorf("bad magic accepted")
	}
	ix := testIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, n := range []int{0, 3, 5, 10, len(full) / 2} {
		if _, err := ReadIndex(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("truncated index of %d bytes accepted", n)
		}
	}
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder()
	if err := b.Add("", "x"); err == nil {
		t.Errorf("empty id accepted")
	}
	if err := b.Add("a", "x"); err != nil {
		t.Fatal(err)
	}
	if err := b.Add("a", "y"); err == nil {
		t.Errorf("duplicate id accepted")
	}
	if err := b.AddTokens("b", []string{"tok1", "tok2"}); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Errorf("Len = %d", b.Len())
	}
}

func TestParseErrorsAndStrings(t *testing.T) {
	if _, err := Parse(BOOL, `SOME p (p HAS 'x')`); err == nil {
		t.Errorf("BOOL dialect accepted COMP syntax")
	}
	if _, err := Parse(Dialect(99), `'x'`); err == nil {
		t.Errorf("unknown dialect accepted")
	}
	q := MustParse(BOOL, `'a' AND 'b'`)
	if q.String() != `'a' AND 'b'` {
		t.Errorf("String = %q", q.String())
	}
	if Classify(q) != ClassBoolNoNeg {
		t.Errorf("Classify = %s", Classify(q))
	}
	for e, s := range map[Engine]string{EngineAuto: "AUTO", EngineBOOL: "BOOL",
		EnginePPRED: "PPRED", EngineNPRED: "NPRED", EngineCOMP: "COMP"} {
		if e.String() != s {
			t.Errorf("Engine(%d).String() = %q", e, e.String())
		}
	}
}

func TestStatsExposed(t *testing.T) {
	ix := testIndex(t)
	st := ix.Stats()
	if st.Docs != 4 || st.Tokens == 0 || st.TotalPositions == 0 {
		t.Errorf("Stats = %+v", st)
	}
	if st.PosPerDoc != 6 { // d1 has 6 tokens
		t.Errorf("PosPerDoc = %d", st.PosPerDoc)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MustParse should panic on bad input")
		}
	}()
	MustParse(COMP, `(((`)
}
