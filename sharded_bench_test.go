package fulltext

// Benchmarks comparing single-index evaluation to sharded parallel
// fan-out, so successive PRs have a perf trajectory for the serving path
// (run with: go test -bench ShardedSearch -benchtime 1x .).

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func benchCorpus(b *testing.B, nDocs int) ([]string, map[string]string) {
	b.Helper()
	rng := rand.New(rand.NewSource(2006))
	vocab := make([]string, 200)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("tok%03d", i)
	}
	ids := make([]string, nDocs)
	texts := make(map[string]string, nDocs)
	for i := range ids {
		ids[i] = fmt.Sprintf("doc%05d", i)
		var sb strings.Builder
		for j := 0; j < 120; j++ {
			sb.WriteString(vocab[rng.Intn(len(vocab))])
			sb.WriteString(" ")
		}
		// Plant the query tokens in ~30% of documents.
		if rng.Intn(10) < 3 {
			sb.WriteString("quality usability test")
		}
		texts[ids[i]] = sb.String()
	}
	return ids, texts
}

func buildShardedBench(b *testing.B, nShards, nDocs int) *ShardedIndex {
	b.Helper()
	docIDs, texts := benchCorpus(b, nDocs)
	sb := NewShardedBuilder(nShards)
	for _, id := range docIDs {
		if err := sb.Add(id, texts[id]); err != nil {
			b.Fatal(err)
		}
	}
	return sb.Build()
}

// BenchmarkShardedSearchRanked: ranked top-K over 1 vs N shards. The
// query cache is disabled so every iteration measures the fan-out, the
// per-shard complete-engine evaluation and the top-K merge.
func BenchmarkShardedSearchRanked(b *testing.B) {
	q := MustParse(COMP,
		`SOME p1 SOME p2 (p1 HAS 'quality' AND p2 HAS 'usability' AND distance(p1,p2,3))`)
	for _, nShards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", nShards), func(b *testing.B) {
			ix := buildShardedBench(b, nShards, 1500)
			ix.SetQueryCacheSize(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ix.SearchRanked(q, TFIDF, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedSearchBool: Boolean merge fan-out, 1 vs N shards.
func BenchmarkShardedSearchBool(b *testing.B) {
	q := MustParse(BOOL, `'quality' AND 'usability' AND NOT 'tok000'`)
	for _, nShards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", nShards), func(b *testing.B) {
			ix := buildShardedBench(b, nShards, 1500)
			ix.SetQueryCacheSize(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ix.Search(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedCacheHit measures the cached path: parse-once, merge
// skipped, LRU hit.
func BenchmarkShardedCacheHit(b *testing.B) {
	ix := buildShardedBench(b, 4, 800)
	q := MustParse(BOOL, `'quality' AND 'usability'`)
	if _, err := ix.Search(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(q); err != nil {
			b.Fatal(err)
		}
	}
}
