// promcheck validates Prometheus text exposition read from stdin with the
// engine's strict parser (internal/telemetry.ParseExposition): well-formed
// HELP/TYPE/sample lines, cumulative histogram buckets, the +Inf == _count
// invariant. Beyond well-formedness it can require specific metric
// families to be present, and specific families to carry a non-zero
// sample — which is how the CI smoke scripts assert that a scraped
// ftserve actually measured something:
//
//	curl -s localhost:8080/metrics | go run ./scripts/promcheck \
//	    -require fulltext_docs,fulltext_query_plan_seconds \
//	    -nonzero fulltext_wal_recovery_replayed_records_total
//
// With -naming, every family name is additionally validated against the
// engine's naming rules (internal/telemetry.CheckMetricName — the same
// function the metricname analyzer enforces at compile time), so the
// statically checked vocabulary and what a live scrape serves cannot
// drift apart.
//
// Exits 0 and prints a one-line summary on success; exits 1 with the
// parse error or the missing/zero family names otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fulltext/internal/telemetry"
)

func main() {
	require := flag.String("require", "",
		"comma-separated families that must be present with at least one sample")
	nonzero := flag.String("nonzero", "",
		"comma-separated families that must carry at least one sample with a value > 0")
	naming := flag.Bool("naming", false,
		"validate every family name against the engine's naming rules (telemetry.CheckMetricName)")
	flag.Parse()

	fams, err := telemetry.ParseExposition(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: invalid exposition: %v\n", err)
		os.Exit(1)
	}
	byName := make(map[string]telemetry.Family, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}

	split := func(s string) []string {
		var out []string
		for _, name := range strings.Split(s, ",") {
			if name = strings.TrimSpace(name); name != "" {
				out = append(out, name)
			}
		}
		return out
	}

	var bad []string
	if *naming {
		for _, f := range fams {
			if err := telemetry.CheckMetricName(f.Name, f.Type); err != nil {
				bad = append(bad, fmt.Sprintf("%s (naming: %v)", f.Name, err))
			}
		}
	}
	required := split(*require)
	for _, name := range required {
		if f, ok := byName[name]; !ok || len(f.Samples) == 0 {
			bad = append(bad, name+" (missing)")
		}
	}
	wantNonzero := split(*nonzero)
	for _, name := range wantNonzero {
		f, ok := byName[name]
		if !ok {
			bad = append(bad, name+" (missing)")
			continue
		}
		found := false
		for _, s := range f.Samples {
			if s.Value > 0 {
				found = true
				break
			}
		}
		if !found {
			bad = append(bad, name+" (all samples zero)")
		}
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "promcheck: %s\n", strings.Join(bad, ", "))
		os.Exit(1)
	}
	fmt.Printf("promcheck: %d families valid, %d required present, %d non-zero\n",
		len(fams), len(required), len(wantNonzero))
}
