#!/usr/bin/env bash
# lint.sh — run the same static checks CI runs, in the same order, so a
# clean local run means a clean CI lint phase:
#
#   1. go vet
#   2. gofmt (no unformatted files)
#   3. ftlint — the project's invariant analyzers (locksafe, atomicfield,
#      walerr, metricname; see docs/INVARIANTS.md)
#   4. staticcheck, pinned to the version CI installs (skipped with a
#      notice when the binary is absent and the machine is offline)
#   5. govulncheck, same pinning and same offline skip
#
# Usage: ./scripts/lint.sh
set -u

cd "$(dirname "$0")/.."

STATICCHECK_VERSION=2025.1.1
GOVULNCHECK_VERSION=v1.1.4

fail=0
step() {
  echo "==> $1"
  shift
  if ! "$@"; then
    echo "FAIL: $1" >&2
    fail=1
  fi
}

gofmt_clean() {
  local out
  out=$(gofmt -l .)
  if [ -n "$out" ]; then
    echo "unformatted files:" >&2
    echo "$out" >&2
    return 1
  fi
}

# Resolve a pinned tool: use an installed binary if present, else try to
# install it (requires network), else skip with a notice. CI always
# installs, so the skip path exists only for offline development.
resolve_tool() {
  local name=$1 module=$2 version=$3
  local bin
  bin="$(go env GOPATH)/bin/$name"
  if command -v "$name" >/dev/null 2>&1; then
    command -v "$name"
    return 0
  fi
  if [ -x "$bin" ]; then
    echo "$bin"
    return 0
  fi
  if go install "$module@$version" >/dev/null 2>&1 && [ -x "$bin" ]; then
    echo "$bin"
    return 0
  fi
  return 1
}

step "go vet" go vet ./...
step "gofmt" gofmt_clean
step "ftlint" go run ./cmd/ftlint ./...

if tool=$(resolve_tool staticcheck honnef.co/go/tools/cmd/staticcheck "$STATICCHECK_VERSION"); then
  step "staticcheck" "$tool" ./...
else
  echo "==> staticcheck: not installed and not installable (offline?); skipping (CI runs it pinned at $STATICCHECK_VERSION)"
fi

if tool=$(resolve_tool govulncheck golang.org/x/vuln/cmd/govulncheck "$GOVULNCHECK_VERSION"); then
  step "govulncheck" "$tool" ./...
else
  echo "==> govulncheck: not installed and not installable (offline?); skipping (CI runs it pinned at $GOVULNCHECK_VERSION)"
fi

if [ "$fail" -eq 0 ]; then
  echo "lint: all checks passed"
else
  echo "lint: FAILURES above" >&2
fi
exit "$fail"
