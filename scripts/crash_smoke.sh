#!/usr/bin/env bash
# Crash-recovery smoke test: start a durable ftserve, ingest under
# concurrent load, SIGKILL it mid-flight, restart it on the same data
# directory, and assert that (a) recovery actually replayed the log and
# (b) query results — Boolean and ranked, scores included — are identical
# across the crash. Run from the repository root; CI runs it on every
# push.
set -euo pipefail

PORT="${PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
DATA="$WORK/data"
SRV_PID=""

cleanup() {
  [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

log() { echo "crash_smoke: $*"; }

go build -o "$WORK/ftserve" ./cmd/ftserve

start_server() {
  "$WORK/ftserve" -data-dir "$DATA" -shards 4 -addr "127.0.0.1:$PORT" \
    -wal-sync interval -bgmerge 8 >>"$WORK/server.log" 2>&1 &
  SRV_PID=$!
  for _ in $(seq 1 100); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "server did not become healthy; log:" >&2
  cat "$WORK/server.log" >&2
  exit 1
}

# The queries the crash must not change. took_ms is wall-clock noise and
# is stripped before comparison; everything else (ids, order, scores) must
# match byte for byte.
capture_queries() {
  out="$1"
  : >"$out"
  for q in \
    "/search?q='needle'+AND+'alpha'&lang=bool" \
    "/search?q='needle'+OR+'common'&lang=bool&rank=tfidf&top=10" \
    "/search?q='alpha'&lang=bool&rank=pra&top=10" \
    "/search?q=dist('alpha',+'beta',+3)&lang=dist" \
    "/search?q=SOME+t1+SOME+t2+(t1+HAS+'alpha'+AND+t2+HAS+'beta'+AND+ordered(t1,t2))&lang=comp"
  do
    printf '%s ' "$q" >>"$out"
    curl -sf "$BASE$q" | sed 's/"took_ms":[0-9.eE+-]*,//' >>"$out"
    echo >>"$out"
  done
}

log "starting durable server in $DATA"
start_server

log "ingesting under concurrent load"
# A seed batch, then concurrent single-document adds, then deletes —
# including a batch delete — so the log holds every record type.
batch='{"docs":['
for i in $(seq 0 39); do
  [ "$i" -gt 0 ] && batch+=','
  batch+="{\"id\":\"seed-$i\",\"body\":\"alpha beta needle doc $i\"}"
done
batch+=']}'
curl -sf -X POST "$BASE/docs/batch" -d "$batch" >/dev/null

seq 0 39 | xargs -P 8 -I{} curl -sf -X POST "$BASE/docs" \
  -d '{"id":"live-{}","body":"common gamma alpha entry {}"}' -o /dev/null

curl -sf -X DELETE "$BASE/docs/seed-3" >/dev/null
curl -sf -X POST "$BASE/docs/delete-batch" \
  -d '{"ids":["seed-7","seed-11","never-existed"]}' >/dev/null

docs_before=$(curl -sf "$BASE/healthz" | grep -o '"docs":[0-9]*')
capture_queries "$WORK/before.txt"

log "SIGKILL mid-flight ($docs_before)"
kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""

log "restarting from $DATA"
start_server

docs_after=$(curl -sf "$BASE/healthz" | grep -o '"docs":[0-9]*')
if [ "$docs_before" != "$docs_after" ]; then
  echo "document count diverged across the crash: $docs_before -> $docs_after" >&2
  exit 1
fi

replayed=$(curl -sf "$BASE/stats" | grep -o '"replayed_records":[0-9]*' | cut -d: -f2)
if [ -z "$replayed" ] || [ "$replayed" -eq 0 ]; then
  echo "recovery replayed nothing (replayed_records=$replayed); the WAL was not exercised" >&2
  exit 1
fi
log "recovery replayed $replayed records"

# The same recovery must surface on the Prometheus surface: a valid
# exposition whose recovery counters are non-zero after the restart.
curl -sf "$BASE/metrics" | go run ./scripts/promcheck \
  -require fulltext_wal_recovery_replayed_records_total,fulltext_wal_recovery_replayed_adds_total,fulltext_wal_group_commit_batch_records \
  -nonzero fulltext_wal_recovery_replayed_records_total || {
  echo "/metrics recovery counters missing or zero after restart" >&2
  exit 1
}

capture_queries "$WORK/after.txt"
if ! diff -u "$WORK/before.txt" "$WORK/after.txt"; then
  echo "query results diverged across the crash" >&2
  exit 1
fi

# A checkpoint on the recovered server must succeed and shrink the log.
curl -sf -X POST "$BASE/checkpoint" | grep -q '"lsn"' || {
  echo "checkpoint on the recovered server failed" >&2
  exit 1
}

log "OK: $docs_after survived SIGKILL, $replayed records replayed, results identical"
