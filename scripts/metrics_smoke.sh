#!/usr/bin/env bash
# Observability smoke test: start a durable ftserve, ingest, query (traced
# and untraced), checkpoint, then scrape /metrics and validate the
# exposition with the strict parser (scripts/promcheck), requiring the
# core metric families to be present and the ones this traffic must have
# moved to be non-zero. Also asserts the exposition content type, the
# ?trace=1 span tree, and the /stats telemetry section. Run from the
# repository root; CI runs it on every push.
set -euo pipefail

PORT="${PORT:-18081}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
DATA="$WORK/data"
SRV_PID=""

cleanup() {
  [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

log() { echo "metrics_smoke: $*"; }

go build -o "$WORK/ftserve" ./cmd/ftserve
go build -o "$WORK/promcheck" ./scripts/promcheck

"$WORK/ftserve" -data-dir "$DATA" -shards 4 -addr "127.0.0.1:$PORT" \
  -slow-query 5m -history-interval 100ms -slo-availability 99.9 \
  >>"$WORK/server.log" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 100); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null || {
  echo "server did not become healthy; log:" >&2
  cat "$WORK/server.log" >&2
  exit 1
}

log "ingesting and querying"
batch='{"docs":['
for i in $(seq 0 19); do
  [ "$i" -gt 0 ] && batch+=','
  batch+="{\"id\":\"doc-$i\",\"body\":\"alpha beta needle entry $i\"}"
done
batch+=']}'
curl -sf -X POST "$BASE/docs/batch" -d "$batch" >/dev/null
curl -sf "$BASE/search?q='alpha'+AND+'needle'&lang=bool" >/dev/null
curl -sf "$BASE/search?q='alpha'&lang=bool&rank=tfidf&top=5" >/dev/null
curl -sf -X DELETE "$BASE/docs/doc-3" >/dev/null
curl -sf -X POST "$BASE/checkpoint" >/dev/null

# Block-max traffic: a skewed corpus shaped so the WAND evaluator must
# jump posting-list blocks. Mid docs fill the top-3 heap early (setting
# the threshold), the long tail of low-tf docs sits strictly below it
# (their blocks are skippable), and a few late high-tf docs keep the
# needle list's global upper bound above the threshold so the pivot loop
# keeps running instead of terminating early. The ranked OR query then
# must move fulltext_wand_blocks_skipped_total.
log "block-max ranked traffic"
bm='{"docs":['
for i in $(seq 0 11); do
  [ "$i" -gt 0 ] && bm+=','
  bm+="{\"id\":\"bm-mid-$i\",\"body\":\"needle needle needle mid\"}"
done
for i in $(seq 0 299); do
  bm+=",{\"id\":\"bm-tail-$i\",\"body\":\"needle t1 t2 t3 t4 t5 t6 t7\"}"
done
for i in $(seq 0 3); do
  bm+=",{\"id\":\"bm-hot-$i\",\"body\":\"needle needle needle needle needle needle needle hotmark\"}"
done
for i in $(seq 300 599); do
  bm+=",{\"id\":\"bm-tail-$i\",\"body\":\"needle t1 t2 t3 t4 t5 t6 t7\"}"
done
bm+=']}'
curl -sf -X POST "$BASE/docs/batch" -d "$bm" >/dev/null
curl -sf "$BASE/search?q='needle'+OR+'hotmark'&lang=bool&rank=tfidf&top=3" >/dev/null

# A traced query must return the span tree inline: a root span named after
# the endpoint with plan/shard/merge children.
traced=$(curl -sf "$BASE/search?q='alpha'&lang=bool&trace=1")
echo "$traced" | grep -q '"trace":{"name":"search"' || {
  echo "traced response carries no span tree: $traced" >&2
  exit 1
}
echo "$traced" | grep -q '"shard 0"' || {
  echo "span tree missing shard spans: $traced" >&2
  exit 1
}

# Skewed query-shape traffic: the two-token AND shape must dominate the
# analytics sketch (different literals, same fingerprint), beating the
# single-token and OR shapes the earlier traffic produced.
log "skewed query-shape traffic"
for pair in "'alpha'+AND+'beta'" "'beta'+AND+'needle'" "'entry'+AND+'alpha'" "'needle'+AND+'entry'"; do
  curl -sf "$BASE/search?q=$pair&lang=bool" >/dev/null
  curl -sf "$BASE/search?q=$pair&lang=bool&rank=tfidf&top=3" >/dev/null
done
top_shape=$(curl -sf "$BASE/stats/queries?n=1")
echo "$top_shape" | grep -q '"shape":"bool:\$1 AND \$2"' || {
  echo "hot shape is not the two-token AND: $top_shape" >&2
  exit 1
}
hot_count=$(echo "$top_shape" | grep -o '"count":[0-9]*' | head -1 | cut -d: -f2)
[ "${hot_count:-0}" -ge 8 ] || {
  echo "hot shape count $hot_count implausibly low: $top_shape" >&2
  exit 1
}

# The history store must have sampled by now (100ms cadence) and serve
# windowed aggregates including request-latency quantiles.
log "checking /metrics/history"
sleep 0.5
hist=$(curl -sf "$BASE/metrics/history?window=1m&metric=fulltext_http_request_duration_seconds")
echo "$hist" | grep -q '"name":"fulltext_http_request_duration_seconds"' || {
  echo "history window has no request-duration series: $hist" >&2
  exit 1
}
echo "$hist" | grep -q '"p99":' || {
  echo "history window carries no p99 aggregate: $hist" >&2
  exit 1
}
echo "$hist" | grep -q '"points":' || {
  echo "history window carries no per-tick points: $hist" >&2
  exit 1
}

# /slo reports the availability objective, healthy under this traffic.
curl -sf "$BASE/slo" | grep -q '"name":"availability"' || {
  echo "/slo lost the availability objective" >&2
  exit 1
}

# /stats must expose the registry-backed telemetry and endpoints sections.
stats=$(curl -sf "$BASE/stats")
echo "$stats" | grep -q '"telemetry"' || {
  echo "/stats lost its telemetry section" >&2
  exit 1
}
echo "$stats" | grep -q '"endpoints"' || {
  echo "/stats lost its endpoints section" >&2
  exit 1
}

log "scraping /metrics"
headers=$(curl -sfI "$BASE/metrics" 2>/dev/null || curl -sf -o /dev/null -D - "$BASE/metrics")
echo "$headers" | grep -qi 'content-type: text/plain; version=0.0.4' || {
  echo "wrong /metrics content type:" >&2
  echo "$headers" >&2
  exit 1
}
curl -sf "$BASE/metrics" >"$WORK/metrics.txt"

# -naming cross-checks every live family name against the same rules the
# metricname analyzer enforces at compile time (telemetry.CheckMetricName),
# so the served vocabulary can never drift from the statically checked one.
"$WORK/promcheck" <"$WORK/metrics.txt" \
  -naming \
  -require fulltext_http_request_duration_seconds,fulltext_uptime_seconds,fulltext_query_plan_seconds,fulltext_query_shard_eval_seconds,fulltext_query_merge_seconds,fulltext_query_cache_hits_total,fulltext_ranked_evals_total,fulltext_wand_scored_docs_total,fulltext_wand_blocks_skipped_total,fulltext_docs,fulltext_shards,fulltext_segments,fulltext_merge_workers,fulltext_segment_merges_total,fulltext_wal_append_seconds,fulltext_wal_appends_total,fulltext_checkpoint_seconds,fulltext_checkpoint_phase_seconds,fulltext_checkpoints_total,fulltext_http_responses_total,fulltext_query_shapes_tracked,fulltext_slo_error_budget_remaining_ratio,fulltext_slo_burn_rate \
  -nonzero fulltext_docs,fulltext_wal_appends_total,fulltext_checkpoints_total,fulltext_ranked_evals_total,fulltext_wand_scored_docs_total,fulltext_wand_blocks_skipped_total,fulltext_http_responses_total,fulltext_query_shapes_tracked,fulltext_slo_error_budget_remaining_ratio

log "OK: exposition valid, core families present, hot-path families non-zero"

# --- SLO burn phase: a second server with an impossible latency objective.
# Every request exceeds 1ns, so the error budget burns and /healthz must
# leave "ok" (degraded while budget remains, 503 exhausted once it's gone)
# while the budget-ratio gauge drops below 1.
log "SLO burn phase"
kill -9 "$SRV_PID" 2>/dev/null || true
wait "$SRV_PID" 2>/dev/null || true
PORT2=$((PORT + 1))
BASE2="http://127.0.0.1:$PORT2"
"$WORK/ftserve" -data-dir "$DATA" -shards 4 -addr "127.0.0.1:$PORT2" \
  -history-interval 100ms -history-retention 10s -slo-latency-p99 1ns \
  >>"$WORK/server.log" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 100); do
  if curl -s "$BASE2/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done

status=""
for _ in $(seq 1 50); do
  curl -sf "$BASE2/search?q='alpha'&lang=bool" >/dev/null || true
  hz=$(curl -s "$BASE2/healthz" || true)
  status=$(echo "$hz" | grep -o '"status":"[a-z]*"' | head -1 || true)
  case "$status" in
    '"status":"degraded"'|'"status":"exhausted"') break ;;
  esac
  sleep 0.1
done
case "$status" in
  '"status":"degraded"'|'"status":"exhausted"') ;;
  *)
    echo "healthz never left ok under total SLO burn: $status" >&2
    curl -s "$BASE2/slo" >&2
    exit 1 ;;
esac

burn_metrics=$(curl -s "$BASE2/metrics")
ratio=$(echo "$burn_metrics" | awk '/^fulltext_slo_error_budget_remaining_ratio\{/ {print $2; exit}')
awk -v r="${ratio:-1}" 'BEGIN { exit !(r < 1) }' || {
  echo "budget ratio did not drop under burn: ${ratio:-missing}" >&2
  exit 1
}

log "OK: SLO burn flipped healthz to ${status#*:} with budget ratio $ratio"
