package fulltext

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"fulltext/internal/invlist"
	"fulltext/internal/pred"
	"fulltext/internal/text"
)

// Index persistence: a small header with the document id table and the
// analyzer configuration, followed by the inverted-list codec of
// internal/invlist (which since its version 2 freezes the standalone
// scoring-statistics block — node norms and per-list score upper bounds —
// so loaded indexes serve ranked queries without an O(index) warm-up
// pass). Custom predicates registered with RegisterPredicate are not
// serialized; re-register them after ReadIndex.
const (
	indexMagic   = "FTSX"
	indexVersion = 2
)

// Sharded-index persistence: a container header (shard count, per-shard
// global-ordinal tables) framing one length-prefixed single-index blob per
// shard, each in the exact Index.WriteTo format. Version 2 appends, after
// each blob, the shard's scoring-statistics block computed against the
// container's *global* collection statistics (norm and token counts as
// uvarints, then the invlist.WriteStatsBlockTo body) — the block ranked
// queries actually use — so a loaded sharded index serves its first ranked
// query without the per-shard O(index) warm-up pass.
const (
	shardedMagic      = "FTSS"
	shardedVersion    = 2
	shardedMinVersion = 1
	maxShards         = 1 << 16
)

// WriteTo serializes the index. It implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	if err := write([]byte(indexMagic)); err != nil {
		return n, err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		return write(buf[:k])
	}
	if err := putUvarint(indexVersion); err != nil {
		return n, err
	}
	if err := putUvarint(uint64(len(ix.ids))); err != nil {
		return n, err
	}
	for _, id := range ix.ids {
		if err := putUvarint(uint64(len(id))); err != nil {
			return n, err
		}
		if err := write([]byte(id)); err != nil {
			return n, err
		}
	}
	// Analyzer configuration.
	stem := uint64(0)
	if ix.analyzer != nil && ix.analyzer.Stem {
		stem = 1
	}
	if err := putUvarint(stem); err != nil {
		return n, err
	}
	var stops []string
	var groups [][]string
	if ix.analyzer != nil {
		stops = ix.analyzer.Stop.Words()
		groups = ix.analyzer.Syn.Groups()
	}
	if err := putUvarint(uint64(len(stops))); err != nil {
		return n, err
	}
	for _, w := range stops {
		if err := putUvarint(uint64(len(w))); err != nil {
			return n, err
		}
		if err := write([]byte(w)); err != nil {
			return n, err
		}
	}
	if err := putUvarint(uint64(len(groups))); err != nil {
		return n, err
	}
	for _, g := range groups {
		if err := putUvarint(uint64(len(g))); err != nil {
			return n, err
		}
		for _, w := range g {
			if err := putUvarint(uint64(len(w))); err != nil {
				return n, err
			}
			if err := write([]byte(w)); err != nil {
				return n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	m, err := ix.inv.WriteTo(w)
	return n + m, err
}

// ReadIndex deserializes an index written by WriteTo. The index gets the
// default predicate registry.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("fulltext: reading magic: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("fulltext: bad magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fulltext: reading version: %w", err)
	}
	if version != indexVersion {
		return nil, fmt.Errorf("fulltext: unsupported version %d", version)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fulltext: reading id count: %w", err)
	}
	if count > 1<<31 {
		return nil, fmt.Errorf("fulltext: id count %d too large", count)
	}
	ids := make([]string, count)
	for i := range ids {
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("fulltext: reading id length: %w", err)
		}
		if l > 1<<20 {
			return nil, fmt.Errorf("fulltext: id length %d too large", l)
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("fulltext: reading id: %w", err)
		}
		ids[i] = string(b)
	}
	readString := func(what string, max uint64) (string, error) {
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return "", fmt.Errorf("fulltext: reading %s length: %w", what, err)
		}
		if l > max {
			return "", fmt.Errorf("fulltext: %s length %d too large", what, l)
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", fmt.Errorf("fulltext: reading %s: %w", what, err)
		}
		return string(b), nil
	}
	stem, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fulltext: reading stem flag: %w", err)
	}
	nStops, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fulltext: reading stop-word count: %w", err)
	}
	if nStops > 1<<20 {
		return nil, fmt.Errorf("fulltext: stop-word count %d too large", nStops)
	}
	stops := make([]string, nStops)
	for i := range stops {
		if stops[i], err = readString("stop word", 1<<16); err != nil {
			return nil, err
		}
	}
	nGroups, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fulltext: reading synonym group count: %w", err)
	}
	if nGroups > 1<<20 {
		return nil, fmt.Errorf("fulltext: synonym group count %d too large", nGroups)
	}
	groups := make([][]string, nGroups)
	for i := range groups {
		sz, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("fulltext: reading synonym group size: %w", err)
		}
		if sz > 1<<16 {
			return nil, fmt.Errorf("fulltext: synonym group size %d too large", sz)
		}
		groups[i] = make([]string, sz)
		for j := range groups[i] {
			if groups[i][j], err = readString("synonym", 1<<16); err != nil {
				return nil, err
			}
		}
	}

	inv, err := invlist.ReadFrom(br)
	if err != nil {
		return nil, err
	}
	if inv.NumNodes() != len(ids) {
		return nil, fmt.Errorf("fulltext: id table has %d entries but index has %d nodes", len(ids), inv.NumNodes())
	}
	analyzer := &text.Analyzer{
		Stem: stem != 0,
		Stop: text.NewStopSet(stops),
		Syn:  text.NewThesaurus(groups),
	}
	return &Index{inv: inv, reg: pred.Default(), ids: ids, analyzer: analyzer, rc: &rankedCounters{}}, nil
}

// WriteTo serializes the sharded index. It implements io.WriterTo. Custom
// predicates are not serialized; re-register them after ReadShardedIndex.
func (s *ShardedIndex) WriteTo(w io.Writer) (int64, error) {
	if len(s.shards) > maxShards {
		return 0, fmt.Errorf("fulltext: %d shards exceed the format limit of %d", len(s.shards), maxShards)
	}
	bw := bufio.NewWriter(w)
	var n int64
	write := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		return write(buf[:k])
	}
	if err := write([]byte(shardedMagic)); err != nil {
		return n, err
	}
	if err := putUvarint(shardedVersion); err != nil {
		return n, err
	}
	if err := putUvarint(uint64(len(s.shards))); err != nil {
		return n, err
	}
	for i, ix := range s.shards {
		// Global-ordinal table, delta encoded (ordinals are strictly
		// increasing within a shard).
		ords := s.ords[i]
		if err := putUvarint(uint64(len(ords))); err != nil {
			return n, err
		}
		prev := -1
		for _, o := range ords {
			if err := putUvarint(uint64(o - prev)); err != nil {
				return n, err
			}
			prev = o
		}
		// Index.WriteTo is deterministic, so a discard pass yields the length
		// prefix without materializing the shard's serialized form.
		blobLen, err := ix.WriteTo(io.Discard)
		if err != nil {
			return n, err
		}
		if err := putUvarint(uint64(blobLen)); err != nil {
			return n, err
		}
		m, err := ix.WriteTo(bw)
		n += m
		if err != nil {
			return n, err
		}
		if m != blobLen {
			return n, fmt.Errorf("fulltext: shard %d serialized to %d bytes after declaring %d", i, m, blobLen)
		}
		// Global-statistics block (computed now if no ranked query has
		// warmed it): what this shard's ranked scoring reads at serve time.
		blk := ix.inv.StatsBlock(s.cstats)
		toks := ix.inv.Tokens()
		if err := putUvarint(uint64(len(blk.Norms))); err != nil {
			return n, err
		}
		if err := putUvarint(uint64(len(toks))); err != nil {
			return n, err
		}
		m, err = invlist.WriteStatsBlockTo(bw, blk, toks)
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadShardedIndex deserializes a sharded index written by
// ShardedIndex.WriteTo. The loaded index gets default predicate registries,
// a fresh query cache, and a new build generation.
func ReadShardedIndex(r io.Reader) (*ShardedIndex, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(shardedMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("fulltext: reading sharded magic: %w", err)
	}
	if string(magic) != shardedMagic {
		return nil, fmt.Errorf("fulltext: bad sharded magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fulltext: reading sharded version: %w", err)
	}
	if version < shardedMinVersion || version > shardedVersion {
		return nil, fmt.Errorf("fulltext: unsupported sharded version %d", version)
	}
	nshards, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fulltext: reading shard count: %w", err)
	}
	if nshards == 0 || nshards > maxShards {
		return nil, fmt.Errorf("fulltext: shard count %d out of range", nshards)
	}
	shards := make([]*Index, nshards)
	ords := make([][]int, nshards)
	blocks := make([]*invlist.StatsBlock, nshards)
	total := 0
	for i := range shards {
		ndocs, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("fulltext: reading shard %d doc count: %w", i, err)
		}
		if ndocs > 1<<31 {
			return nil, fmt.Errorf("fulltext: shard %d doc count %d too large", i, ndocs)
		}
		ords[i] = make([]int, ndocs)
		prev := -1
		for j := range ords[i] {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("fulltext: reading shard %d ordinal: %w", i, err)
			}
			if d == 0 || d > 1<<31 {
				return nil, fmt.Errorf("fulltext: shard %d ordinal delta %d invalid", i, d)
			}
			ords[i][j] = prev + int(d)
			prev = ords[i][j]
		}
		total += int(ndocs)
		blobLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("fulltext: reading shard %d length: %w", i, err)
		}
		lr := io.LimitReader(br, int64(blobLen))
		ix, err := ReadIndex(lr)
		if err != nil {
			return nil, fmt.Errorf("fulltext: shard %d: %w", i, err)
		}
		// ReadIndex buffers internally; skip whatever of the blob it left.
		if _, err := io.Copy(io.Discard, lr); err != nil {
			return nil, fmt.Errorf("fulltext: shard %d: %w", i, err)
		}
		if ix.Docs() != int(ndocs) {
			return nil, fmt.Errorf("fulltext: shard %d has %d docs but ordinal table has %d", i, ix.Docs(), ndocs)
		}
		shards[i] = ix
		if version >= 2 {
			blocks[i], err = readShardStatsBlock(br, ix)
			if err != nil {
				return nil, fmt.Errorf("fulltext: shard %d stats block: %w", i, err)
			}
		}
	}
	// The ordinal tables must be a permutation of 0..total-1.
	seen := make([]bool, total)
	for i := range ords {
		for _, o := range ords[i] {
			if o < 0 || o >= total || seen[o] {
				return nil, fmt.Errorf("fulltext: shard %d ordinal %d invalid", i, o)
			}
			seen[o] = true
		}
	}
	s := newShardedIndex(shards, ords)
	if version >= 2 {
		// Install the persisted global-statistics blocks under the new
		// container's shared statistics identity: ranked queries hit them
		// directly instead of recomputing the per-shard warm-up pass.
		for i, blk := range blocks {
			shards[i].inv.SetStatsBlock(s.cstats, blk)
		}
	}
	return s, nil
}

// readShardStatsBlock reads one shard's global-statistics block (FTSS
// version 2), validating counts against the already-loaded shard before
// delegating to the shared block reader.
func readShardStatsBlock(br *bufio.Reader, ix *Index) (*invlist.StatsBlock, error) {
	nnorms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("reading norm count: %w", err)
	}
	if int(nnorms) != ix.Docs() {
		return nil, fmt.Errorf("norm count %d does not match %d docs", nnorms, ix.Docs())
	}
	ntoks, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("reading token count: %w", err)
	}
	toks := ix.inv.Tokens()
	if int(ntoks) != len(toks) {
		return nil, fmt.Errorf("token count %d does not match vocabulary %d", ntoks, len(toks))
	}
	return invlist.ReadStatsBlockFrom(br, int(nnorms), toks)
}
