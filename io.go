package fulltext

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"fulltext/internal/core"
	"fulltext/internal/invlist"
	"fulltext/internal/pred"
	"fulltext/internal/score"
	"fulltext/internal/segment"
	"fulltext/internal/text"
)

// Index persistence: a small header with the document id table and the
// analyzer configuration, followed by the inverted-list codec of
// internal/invlist (which since its version 2 freezes the standalone
// scoring-statistics block — node norms and per-list score upper bounds —
// so loaded indexes serve ranked queries without an O(index) warm-up
// pass). Custom predicates registered with RegisterPredicate are not
// serialized; re-register them after ReadIndex.
const (
	indexMagic   = "FTSX"
	indexVersion = 2
)

// Sharded-index persistence, version 4 (segmented): a container header
// (shard count, next global ordinal) framing, per shard, the shard's
// segment tail. Each segment stores its global-ordinal table (delta
// encoded), its tombstone list, a length-prefixed single-index blob in the
// Index.WriteTo format — with the standalone scoring-statistics block
// omitted, because sharded serving only ever reads global-statistics
// blocks — and finally the segment's scoring-statistics block computed
// against the container's *global* live collection statistics (norm and
// token counts as uvarints, then the invlist.WriteStatsBlockTo body), so a
// loaded index serves its first ranked query without the per-segment
// O(segment) warm-up pass. Version 4 appends the per-block score-bound
// section (invlist.WriteBlockSectionTo) after each segment's statistics
// block, so block-max skipping is warm at load time too.
//
// Versions 1 and 2 (one monolithic blob per shard, version 2 adding the
// per-shard global-statistics block) are still readable; each shard loads
// as a single base segment. Those versions also embedded each shard's
// standalone statistics block inside the FTIX blob — bytes sharded serving
// never reads — which is exactly the waste the version-3 blob omission
// removes. Version 3 (segmented, no block sections) loads with per-block
// metadata synthesized lazily on first statistics access.
//
// The per-segment forward index (node → distinct tokens, backing the
// O(document) delete path) is not persisted in any version: it is derived
// state, rebuilt from the posting lists when each loaded segment passes
// through segment.New.
const (
	shardedMagic      = "FTSS"
	shardedVersion    = 4
	shardedMinVersion = 1
	maxShards         = 1 << 16
	maxSegments       = 1 << 16
)

// WriteTo serializes the index. It implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	return ix.writeToWith(w, invlist.WriteOptions{})
}

// writeToWith is WriteTo with explicit inverted-list codec options; the
// sharded container omits the standalone statistics block from embedded
// blobs.
func (ix *Index) writeToWith(w io.Writer, o invlist.WriteOptions) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	if err := write([]byte(indexMagic)); err != nil {
		return n, err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		return write(buf[:k])
	}
	if err := putUvarint(indexVersion); err != nil {
		return n, err
	}
	if err := putUvarint(uint64(len(ix.ids))); err != nil {
		return n, err
	}
	for _, id := range ix.ids {
		if err := putUvarint(uint64(len(id))); err != nil {
			return n, err
		}
		if err := write([]byte(id)); err != nil {
			return n, err
		}
	}
	// Analyzer configuration.
	stem := uint64(0)
	if ix.analyzer != nil && ix.analyzer.Stem {
		stem = 1
	}
	if err := putUvarint(stem); err != nil {
		return n, err
	}
	var stops []string
	var groups [][]string
	if ix.analyzer != nil {
		stops = ix.analyzer.Stop.Words()
		groups = ix.analyzer.Syn.Groups()
	}
	if err := putUvarint(uint64(len(stops))); err != nil {
		return n, err
	}
	for _, w := range stops {
		if err := putUvarint(uint64(len(w))); err != nil {
			return n, err
		}
		if err := write([]byte(w)); err != nil {
			return n, err
		}
	}
	if err := putUvarint(uint64(len(groups))); err != nil {
		return n, err
	}
	for _, g := range groups {
		if err := putUvarint(uint64(len(g))); err != nil {
			return n, err
		}
		for _, w := range g {
			if err := putUvarint(uint64(len(w))); err != nil {
				return n, err
			}
			if err := write([]byte(w)); err != nil {
				return n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	m, err := ix.inv.WriteToWith(w, o)
	return n + m, err
}

// ReadIndex deserializes an index written by WriteTo. The index gets the
// default predicate registry.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("fulltext: reading magic: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("fulltext: bad magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fulltext: reading version: %w", err)
	}
	if version != indexVersion {
		return nil, fmt.Errorf("fulltext: unsupported version %d", version)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fulltext: reading id count: %w", err)
	}
	if count > 1<<31 {
		return nil, fmt.Errorf("fulltext: id count %d too large", count)
	}
	ids := make([]string, count)
	for i := range ids {
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("fulltext: reading id length: %w", err)
		}
		if l > 1<<20 {
			return nil, fmt.Errorf("fulltext: id length %d too large", l)
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("fulltext: reading id: %w", err)
		}
		ids[i] = string(b)
	}
	readString := func(what string, max uint64) (string, error) {
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return "", fmt.Errorf("fulltext: reading %s length: %w", what, err)
		}
		if l > max {
			return "", fmt.Errorf("fulltext: %s length %d too large", what, l)
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", fmt.Errorf("fulltext: reading %s: %w", what, err)
		}
		return string(b), nil
	}
	stem, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fulltext: reading stem flag: %w", err)
	}
	nStops, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fulltext: reading stop-word count: %w", err)
	}
	if nStops > 1<<20 {
		return nil, fmt.Errorf("fulltext: stop-word count %d too large", nStops)
	}
	stops := make([]string, nStops)
	for i := range stops {
		if stops[i], err = readString("stop word", 1<<16); err != nil {
			return nil, err
		}
	}
	nGroups, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fulltext: reading synonym group count: %w", err)
	}
	if nGroups > 1<<20 {
		return nil, fmt.Errorf("fulltext: synonym group count %d too large", nGroups)
	}
	groups := make([][]string, nGroups)
	for i := range groups {
		sz, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("fulltext: reading synonym group size: %w", err)
		}
		if sz > 1<<16 {
			return nil, fmt.Errorf("fulltext: synonym group size %d too large", sz)
		}
		groups[i] = make([]string, sz)
		for j := range groups[i] {
			if groups[i][j], err = readString("synonym", 1<<16); err != nil {
				return nil, err
			}
		}
	}

	inv, err := invlist.ReadFrom(br)
	if err != nil {
		return nil, err
	}
	if inv.NumNodes() != len(ids) {
		return nil, fmt.Errorf("fulltext: id table has %d entries but index has %d nodes", len(ids), inv.NumNodes())
	}
	analyzer := &text.Analyzer{
		Stem: stem != 0,
		Stop: text.NewStopSet(stops),
		Syn:  text.NewThesaurus(groups),
	}
	return &Index{inv: inv, reg: pred.Default(), ids: ids, analyzer: analyzer, rc: &rankedCounters{}}, nil
}

// WriteTo serializes the sharded index in the segmented version-4 layout.
// It implements io.WriterTo and is safe to call concurrently with
// searches. Custom predicates and the merge policy are not serialized;
// re-register/re-set them after ReadShardedIndex.
func (s *ShardedIndex) WriteTo(w io.Writer) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.writeToLocked(w)
}

// writeToLocked is WriteTo's body; callers hold at least the read lock,
// which freezes the fields the borrowed view aliases.
func (s *ShardedIndex) writeToLocked(w io.Writer) (int64, error) {
	return s.writeToLockedVersion(w, shardedVersion)
}

// writeToLockedVersion writes the segmented layout at an explicit container
// version; version 3 omits the per-segment block sections. Tests use it to
// produce legacy streams, production writes always pass shardedVersion.
func (s *ShardedIndex) writeToLockedVersion(w io.Writer, version int) (int64, error) {
	v := &snapshotView{shards: s.shards, nextOrd: s.nextOrd, cstats: s.cstats}
	return v.writeTo(w, version)
}

// snapshotView is a point-in-time serializable image of a sharded index:
// the segment set, the ordinal allocator position, and the global
// statistics every segment's scoring block is computed against. WriteTo
// borrows the live fields under the read lock; Checkpoint instead builds
// a frozen copy (snapshotViewLocked) so serialization — the expensive
// part — runs with no index lock held at all.
type snapshotView struct {
	shards  [][]*seg
	nextOrd int
	cstats  *score.Cached
}

// snapshotViewLocked builds a frozen view under the write or read lock:
// copy-on-write clones of every segment (sharing the immutable posting
// data, copying only the tombstone set — see segment.Clone) and a private
// copy of the global statistics (the live ones mutate in place under the
// write lock). The returned view is safe to serialize after the lock is
// released, concurrently with any mutation. The O(live tokens) statistics
// copy and O(documents) tombstone copies are the entire critical section
// of an off-lock checkpoint.
func (s *ShardedIndex) snapshotViewLocked() *snapshotView {
	shards := make([][]*seg, len(s.shards))
	for i, segs := range s.shards {
		shards[i] = make([]*seg, len(segs))
		for j, sg := range segs {
			c := sg.meta.Clone()
			// Not newSeg: that would re-apply the block-size override to the
			// shared posting index. The clone shares Inv, so it already
			// carries the configured granularity.
			shards[i][j] = &seg{meta: c, ix: &Index{inv: c.Inv, reg: s.reg, ids: c.IDs, analyzer: s.analyzer, rc: s.rc}}
		}
	}
	df := make(map[string]int, len(s.stats.df))
	for tok, n := range s.stats.df {
		df[tok] = n
	}
	frozen := &globalStats{nodes: s.stats.nodes, totalPos: s.stats.totalPos, df: df}
	return &snapshotView{shards: shards, nextOrd: s.nextOrd, cstats: score.NewCached(frozen)}
}

// writeTo serializes the view. Reading segment data is lock-free by
// construction (segments are immutable, tombstone sets are private to the
// view or frozen under the caller's lock); the per-segment statistics
// blocks it requests are guarded by each posting index's own stats mutex,
// shared safely with concurrent queries.
func (v *snapshotView) writeTo(w io.Writer, version int) (int64, error) {
	if len(v.shards) > maxShards {
		return 0, fmt.Errorf("fulltext: %d shards exceed the format limit of %d", len(v.shards), maxShards)
	}
	bw := bufio.NewWriter(w)
	var n int64
	write := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		return write(buf[:k])
	}
	if err := write([]byte(shardedMagic)); err != nil {
		return n, err
	}
	if err := putUvarint(uint64(version)); err != nil {
		return n, err
	}
	if err := putUvarint(uint64(len(v.shards))); err != nil {
		return n, err
	}
	if err := putUvarint(uint64(v.nextOrd)); err != nil {
		return n, err
	}
	for i, segs := range v.shards {
		if len(segs) > maxSegments {
			return n, fmt.Errorf("fulltext: shard %d has %d segments, format limit is %d", i, len(segs), maxSegments)
		}
		if err := putUvarint(uint64(len(segs))); err != nil {
			return n, err
		}
		for _, sg := range segs {
			m, err := writeSegment(bw, putUvarint, sg, version, v.cstats)
			n += m
			if err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// writeSegment writes one segment: ordinal table, tombstones, the index
// blob (standalone statistics omitted — sharded serving reads the global
// block that follows instead), the global-statistics block, and (version
// >= 4) the per-block score-bound section. It returns the bytes it wrote
// directly (the varint framing is counted by the caller's putUvarint
// closure).
func writeSegment(bw *bufio.Writer, putUvarint func(uint64) error, sg *seg, version int, cstats *score.Cached) (int64, error) {
	var n int64
	meta := sg.meta
	// Global-ordinal table, delta encoded (strictly increasing within a
	// segment).
	if err := putUvarint(uint64(len(meta.Ords))); err != nil {
		return n, err
	}
	prev := -1
	for _, o := range meta.Ords {
		if err := putUvarint(uint64(o - prev)); err != nil {
			return n, err
		}
		prev = o
	}
	// Tombstones, delta encoded over ascending local node ids.
	dead := meta.DeadLocal()
	if err := putUvarint(uint64(len(dead))); err != nil {
		return n, err
	}
	prevNode := uint64(0)
	for _, d := range dead {
		if err := putUvarint(uint64(d) - prevNode); err != nil {
			return n, err
		}
		prevNode = uint64(d)
	}
	// writeToWith is deterministic, so a discard pass yields the length
	// prefix without materializing the segment's serialized form.
	opts := invlist.WriteOptions{OmitStatsBlock: true}
	blobLen, err := sg.ix.writeToWith(io.Discard, opts)
	if err != nil {
		return n, err
	}
	if err := putUvarint(uint64(blobLen)); err != nil {
		return n, err
	}
	m, err := sg.ix.writeToWith(bw, opts)
	n += m
	if err != nil {
		return n, err
	}
	if m != blobLen {
		return n, fmt.Errorf("fulltext: segment serialized to %d bytes after declaring %d", m, blobLen)
	}
	// Global-statistics block (computed now if no ranked query has warmed
	// it): what this segment's ranked scoring reads at serve time.
	blk := sg.ix.inv.StatsBlock(cstats)
	toks := sg.ix.inv.Tokens()
	if err := putUvarint(uint64(len(blk.Norms))); err != nil {
		return n, err
	}
	if err := putUvarint(uint64(len(toks))); err != nil {
		return n, err
	}
	m, err = invlist.WriteStatsBlockTo(bw, blk, toks)
	n += m
	if err != nil || version < 4 {
		return n, err
	}
	m, err = invlist.WriteBlockSectionTo(bw, blk, toks)
	n += m
	return n, err
}

// ReadShardedIndex deserializes a sharded index written by
// ShardedIndex.WriteTo — any supported version; versions 1 and 2 load each
// shard as a single base segment. The loaded index gets a default
// predicate registry, the default merge policy, a fresh query cache, and a
// new build generation.
func ReadShardedIndex(r io.Reader) (*ShardedIndex, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(shardedMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("fulltext: reading sharded magic: %w", err)
	}
	if string(magic) != shardedMagic {
		return nil, fmt.Errorf("fulltext: bad sharded magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fulltext: reading sharded version: %w", err)
	}
	if version < shardedMinVersion || version > shardedVersion {
		return nil, fmt.Errorf("fulltext: unsupported sharded version %d", version)
	}
	nshards, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fulltext: reading shard count: %w", err)
	}
	if nshards == 0 || nshards > maxShards {
		return nil, fmt.Errorf("fulltext: shard count %d out of range", nshards)
	}
	if version >= 3 {
		return readSegmentedShards(br, version, int(nshards))
	}
	return readLegacyShards(br, version, int(nshards))
}

// readLegacyShards loads the version-1/2 monolithic-shard layout, wrapping
// each shard as one base segment.
func readLegacyShards(br *bufio.Reader, version uint64, nshards int) (*ShardedIndex, error) {
	shards := make([]*Index, nshards)
	ords := make([][]int, nshards)
	blocks := make([]*invlist.StatsBlock, nshards)
	total := 0
	for i := range shards {
		var err error
		if ords[i], err = readOrdTable(br, fmt.Sprintf("shard %d", i)); err != nil {
			return nil, err
		}
		total += len(ords[i])
		ix, err := readIndexBlob(br, fmt.Sprintf("shard %d", i))
		if err != nil {
			return nil, err
		}
		if ix.Docs() != len(ords[i]) {
			return nil, fmt.Errorf("fulltext: shard %d has %d docs but ordinal table has %d", i, ix.Docs(), len(ords[i]))
		}
		shards[i] = ix
		if version >= 2 {
			blocks[i], err = readShardStatsBlock(br, ix)
			if err != nil {
				return nil, fmt.Errorf("fulltext: shard %d stats block: %w", i, err)
			}
		}
	}
	// The ordinal tables must be a permutation of 0..total-1.
	seen := make([]bool, total)
	for i := range ords {
		for _, o := range ords[i] {
			if o < 0 || o >= total || seen[o] {
				return nil, fmt.Errorf("fulltext: shard %d ordinal %d invalid", i, o)
			}
			seen[o] = true
		}
	}
	s, err := newShardedIndex(shards, ords)
	if err != nil {
		return nil, err
	}
	if version >= 2 {
		// Install the persisted global-statistics blocks under the new
		// container's shared statistics identity: ranked queries hit them
		// directly instead of recomputing the per-shard warm-up pass.
		for i, blk := range blocks {
			shards[i].inv.SetStatsBlock(s.cstats, blk)
		}
	}
	return s, nil
}

// readSegmentedShards loads the segmented layout (versions 3 and 4;
// version 4 adds the per-segment block sections).
func readSegmentedShards(br *bufio.Reader, version uint64, nshards int) (*ShardedIndex, error) {
	nextOrd, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fulltext: reading next ordinal: %w", err)
	}
	if nextOrd > 1<<31 {
		return nil, fmt.Errorf("fulltext: next ordinal %d too large", nextOrd)
	}
	shardSegs := make([][]*segment.Segment, nshards)
	var analyzer *text.Analyzer
	type loadedBlock struct {
		inv *invlist.Index
		blk *invlist.StatsBlock
	}
	var blocks []loadedBlock
	seenOrd := make(map[int]bool)
	for i := range shardSegs {
		nsegs, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("fulltext: reading shard %d segment count: %w", i, err)
		}
		if nsegs == 0 || nsegs > maxSegments {
			return nil, fmt.Errorf("fulltext: shard %d segment count %d out of range", i, nsegs)
		}
		shardSegs[i] = make([]*segment.Segment, nsegs)
		prevLast := -1
		for j := range shardSegs[i] {
			what := fmt.Sprintf("shard %d segment %d", i, j)
			ords, err := readOrdTable(br, what)
			if err != nil {
				return nil, err
			}
			for _, o := range ords {
				if o >= int(nextOrd) || seenOrd[o] {
					return nil, fmt.Errorf("fulltext: %s ordinal %d invalid", what, o)
				}
				seenOrd[o] = true
			}
			// Ordinals must also increase across a shard's segments (the
			// invariant merges rely on); catching a violation here keeps a
			// corrupt file from loading "successfully" and then failing on
			// its first merge.
			if len(ords) > 0 {
				if ords[0] <= prevLast {
					return nil, fmt.Errorf("fulltext: %s ordinal %d not above preceding segment's %d", what, ords[0], prevLast)
				}
				prevLast = ords[len(ords)-1]
			}
			dead, err := readTombstones(br, what, len(ords))
			if err != nil {
				return nil, err
			}
			ix, err := readIndexBlob(br, what)
			if err != nil {
				return nil, err
			}
			if ix.Docs() != len(ords) {
				return nil, fmt.Errorf("fulltext: %s has %d docs but ordinal table has %d", what, ix.Docs(), len(ords))
			}
			meta, err := segment.New(ix.inv, ix.ids, ords)
			if err != nil {
				return nil, fmt.Errorf("fulltext: %s: %w", what, err)
			}
			if err := meta.Restore(dead); err != nil {
				return nil, fmt.Errorf("fulltext: %s: %w", what, err)
			}
			blk, err := readShardStatsBlock(br, ix)
			if err != nil {
				return nil, fmt.Errorf("fulltext: %s stats block: %w", what, err)
			}
			if version >= 4 {
				size, metas, err := invlist.ReadBlockSectionFrom(br, ix.inv.Tokens())
				if err != nil {
					return nil, fmt.Errorf("fulltext: %s block section: %w", what, err)
				}
				blk.BlockSize = size
				blk.Blocks = metas
			}
			blocks = append(blocks, loadedBlock{inv: ix.inv, blk: blk})
			shardSegs[i][j] = meta
			if analyzer == nil {
				analyzer = ix.analyzer
			}
		}
	}
	s, err := newShardedIndexFromSegments(shardSegs, analyzer)
	if err != nil {
		return nil, err
	}
	s.nextOrd = int(nextOrd)
	// Install the persisted global-statistics blocks under the new
	// container's shared statistics identity: ranked queries hit them
	// directly instead of recomputing the per-segment warm-up pass.
	for _, lb := range blocks {
		lb.inv.SetStatsBlock(s.cstats, lb.blk)
	}
	return s, nil
}

// readOrdTable reads one delta-encoded strictly-increasing global-ordinal
// table.
func readOrdTable(br *bufio.Reader, what string) ([]int, error) {
	ndocs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fulltext: reading %s doc count: %w", what, err)
	}
	if ndocs > 1<<31 {
		return nil, fmt.Errorf("fulltext: %s doc count %d too large", what, ndocs)
	}
	ords := make([]int, ndocs)
	prev := -1
	for j := range ords {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("fulltext: reading %s ordinal: %w", what, err)
		}
		if d == 0 || d > 1<<31 {
			return nil, fmt.Errorf("fulltext: %s ordinal delta %d invalid", what, d)
		}
		ords[j] = prev + int(d)
		prev = ords[j]
	}
	return ords, nil
}

// readTombstones reads one delta-encoded ascending tombstone list.
func readTombstones(br *bufio.Reader, what string, ndocs int) ([]core.NodeID, error) {
	ndead, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fulltext: reading %s tombstone count: %w", what, err)
	}
	if int(ndead) > ndocs {
		return nil, fmt.Errorf("fulltext: %s has %d tombstones for %d docs", what, ndead, ndocs)
	}
	dead := make([]core.NodeID, ndead)
	prev := uint64(0)
	for j := range dead {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("fulltext: reading %s tombstone: %w", what, err)
		}
		if d == 0 {
			return nil, fmt.Errorf("fulltext: %s tombstone delta 0 invalid", what)
		}
		prev += d
		if prev > uint64(ndocs) {
			return nil, fmt.Errorf("fulltext: %s tombstone node %d out of range", what, prev)
		}
		dead[j] = core.NodeID(prev)
	}
	return dead, nil
}

// readIndexBlob reads one length-prefixed Index blob.
func readIndexBlob(br *bufio.Reader, what string) (*Index, error) {
	blobLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fulltext: reading %s length: %w", what, err)
	}
	lr := io.LimitReader(br, int64(blobLen))
	ix, err := ReadIndex(lr)
	if err != nil {
		return nil, fmt.Errorf("fulltext: %s: %w", what, err)
	}
	// ReadIndex buffers internally; skip whatever of the blob it left.
	if _, err := io.Copy(io.Discard, lr); err != nil {
		return nil, fmt.Errorf("fulltext: %s: %w", what, err)
	}
	return ix, nil
}

// readShardStatsBlock reads one shard's global-statistics block (FTSS
// version 2), validating counts against the already-loaded shard before
// delegating to the shared block reader.
func readShardStatsBlock(br *bufio.Reader, ix *Index) (*invlist.StatsBlock, error) {
	nnorms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("reading norm count: %w", err)
	}
	if int(nnorms) != ix.Docs() {
		return nil, fmt.Errorf("norm count %d does not match %d docs", nnorms, ix.Docs())
	}
	ntoks, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("reading token count: %w", err)
	}
	toks := ix.inv.Tokens()
	if int(ntoks) != len(toks) {
		return nil, fmt.Errorf("token count %d does not match vocabulary %d", ntoks, len(toks))
	}
	return invlist.ReadStatsBlockFrom(br, int(nnorms), toks)
}
