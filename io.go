package fulltext

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"fulltext/internal/invlist"
	"fulltext/internal/pred"
	"fulltext/internal/text"
)

// Index persistence: a small header with the document id table and the
// analyzer configuration, followed by the inverted-list codec of
// internal/invlist. Custom predicates registered with RegisterPredicate are
// not serialized; re-register them after ReadIndex.
const (
	indexMagic   = "FTSX"
	indexVersion = 2
)

// WriteTo serializes the index. It implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	if err := write([]byte(indexMagic)); err != nil {
		return n, err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		return write(buf[:k])
	}
	if err := putUvarint(indexVersion); err != nil {
		return n, err
	}
	if err := putUvarint(uint64(len(ix.ids))); err != nil {
		return n, err
	}
	for _, id := range ix.ids {
		if err := putUvarint(uint64(len(id))); err != nil {
			return n, err
		}
		if err := write([]byte(id)); err != nil {
			return n, err
		}
	}
	// Analyzer configuration.
	stem := uint64(0)
	if ix.analyzer != nil && ix.analyzer.Stem {
		stem = 1
	}
	if err := putUvarint(stem); err != nil {
		return n, err
	}
	var stops []string
	var groups [][]string
	if ix.analyzer != nil {
		stops = ix.analyzer.Stop.Words()
		groups = ix.analyzer.Syn.Groups()
	}
	if err := putUvarint(uint64(len(stops))); err != nil {
		return n, err
	}
	for _, w := range stops {
		if err := putUvarint(uint64(len(w))); err != nil {
			return n, err
		}
		if err := write([]byte(w)); err != nil {
			return n, err
		}
	}
	if err := putUvarint(uint64(len(groups))); err != nil {
		return n, err
	}
	for _, g := range groups {
		if err := putUvarint(uint64(len(g))); err != nil {
			return n, err
		}
		for _, w := range g {
			if err := putUvarint(uint64(len(w))); err != nil {
				return n, err
			}
			if err := write([]byte(w)); err != nil {
				return n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	m, err := ix.inv.WriteTo(w)
	return n + m, err
}

// ReadIndex deserializes an index written by WriteTo. The index gets the
// default predicate registry.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("fulltext: reading magic: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("fulltext: bad magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fulltext: reading version: %w", err)
	}
	if version != indexVersion {
		return nil, fmt.Errorf("fulltext: unsupported version %d", version)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fulltext: reading id count: %w", err)
	}
	if count > 1<<31 {
		return nil, fmt.Errorf("fulltext: id count %d too large", count)
	}
	ids := make([]string, count)
	for i := range ids {
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("fulltext: reading id length: %w", err)
		}
		if l > 1<<20 {
			return nil, fmt.Errorf("fulltext: id length %d too large", l)
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("fulltext: reading id: %w", err)
		}
		ids[i] = string(b)
	}
	readString := func(what string, max uint64) (string, error) {
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return "", fmt.Errorf("fulltext: reading %s length: %w", what, err)
		}
		if l > max {
			return "", fmt.Errorf("fulltext: %s length %d too large", what, l)
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", fmt.Errorf("fulltext: reading %s: %w", what, err)
		}
		return string(b), nil
	}
	stem, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fulltext: reading stem flag: %w", err)
	}
	nStops, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fulltext: reading stop-word count: %w", err)
	}
	if nStops > 1<<20 {
		return nil, fmt.Errorf("fulltext: stop-word count %d too large", nStops)
	}
	stops := make([]string, nStops)
	for i := range stops {
		if stops[i], err = readString("stop word", 1<<16); err != nil {
			return nil, err
		}
	}
	nGroups, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("fulltext: reading synonym group count: %w", err)
	}
	if nGroups > 1<<20 {
		return nil, fmt.Errorf("fulltext: synonym group count %d too large", nGroups)
	}
	groups := make([][]string, nGroups)
	for i := range groups {
		sz, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("fulltext: reading synonym group size: %w", err)
		}
		if sz > 1<<16 {
			return nil, fmt.Errorf("fulltext: synonym group size %d too large", sz)
		}
		groups[i] = make([]string, sz)
		for j := range groups[i] {
			if groups[i][j], err = readString("synonym", 1<<16); err != nil {
				return nil, err
			}
		}
	}

	inv, err := invlist.ReadFrom(br)
	if err != nil {
		return nil, err
	}
	if inv.NumNodes() != len(ids) {
		return nil, fmt.Errorf("fulltext: id table has %d entries but index has %d nodes", len(ids), inv.NumNodes())
	}
	analyzer := &text.Analyzer{
		Stem: stem != 0,
		Stop: text.NewStopSet(stops),
		Syn:  text.NewThesaurus(groups),
	}
	return &Index{inv: inv, reg: pred.Default(), ids: ids, analyzer: analyzer}, nil
}
